//! Chrome/Perfetto `trace_event` JSON export and schema validation.
//!
//! The emitted document follows the Trace Event Format's "JSON Object
//! Format": a top-level object with a `traceEvents` array of complete
//! spans (`"ph": "X"`), instant events (`"ph": "i"`) and lane-naming
//! metadata (`"ph": "M"`). Open the file at `ui.perfetto.dev` or
//! `chrome://tracing`.

use blockpart_metrics::Json;

use crate::{ClockDomain, Record, Trace};

/// Renders a trace as a `trace_event` JSON document.
///
/// Events appear in record order (metadata first), so a trace whose
/// records are deterministic renders byte-identically.
pub fn to_perfetto(trace: &Trace) -> Json {
    let mut events = Vec::new();
    for (process, name) in trace_process_names(trace) {
        events.push(Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::from(u64::from(process))),
            ("tid", Json::from(0u64)),
            ("name", Json::from("process_name")),
            ("args", Json::obj([("name", Json::from(name))])),
        ]));
    }
    for ((process, thread), name) in trace_thread_names(trace) {
        events.push(Json::obj([
            ("ph", Json::from("M")),
            ("pid", Json::from(u64::from(process))),
            ("tid", Json::from(u64::from(thread))),
            ("name", Json::from("thread_name")),
            ("args", Json::obj([("name", Json::from(name))])),
        ]));
    }
    for record in trace.records() {
        events.push(event_of(record));
    }
    Json::obj([
        ("traceEvents", Json::arr(events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

fn trace_process_names(trace: &Trace) -> Vec<(u32, String)> {
    // Accessors keep Trace's fields private to this crate.
    trace.process_names_for_export()
}

fn trace_thread_names(trace: &Trace) -> Vec<((u32, u32), String)> {
    trace.thread_names_for_export()
}

fn event_of(record: &Record) -> Json {
    let clock = match record.clock {
        ClockDomain::Virtual => "virtual",
        ClockDomain::Wall => "wall",
    };
    let mut fields = vec![
        ("name", Json::from(record.name.clone())),
        ("cat", Json::from(format!("{},{clock}", record.cat))),
        ("pid", Json::from(u64::from(record.process))),
        ("tid", Json::from(u64::from(record.thread))),
        ("ts", Json::from(record.ts_us)),
    ];
    match record.dur_us {
        Some(dur) => {
            fields.push(("ph", Json::from("X")));
            fields.push(("dur", Json::from(dur)));
        }
        None => {
            fields.push(("ph", Json::from("i")));
            // Instant scope: thread.
            fields.push(("s", Json::from("t")));
        }
    }
    if !record.args.is_empty() {
        fields.push((
            "args",
            Json::obj(
                record
                    .args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.json()))
                    .collect::<Vec<_>>(),
            ),
        ));
    }
    Json::obj(fields)
}

/// Validates a document against the `trace_event` schema subset this
/// crate emits (and Perfetto requires): a `traceEvents` array whose
/// elements carry a known `ph`, a string `name`, numeric `pid`/`tid`,
/// and phase-appropriate `ts`/`dur`/`args`. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level `traceEvents`")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;
    for (i, event) in events.iter().enumerate() {
        validate_event(event).map_err(|e| format!("traceEvents[{i}]: {e}"))?;
    }
    Ok(events.len())
}

fn validate_event(event: &Json) -> Result<(), String> {
    let ph = event
        .get("ph")
        .and_then(Json::as_str)
        .ok_or("missing string `ph`")?;
    event
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing string `name`")?;
    for lane in ["pid", "tid"] {
        event
            .get(lane)
            .and_then(Json::as_u64)
            .ok_or(format!("missing numeric `{lane}`"))?;
    }
    let needs_ts = |event: &Json| {
        event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or("missing numeric `ts`")
    };
    match ph {
        "X" => {
            needs_ts(event)?;
            event
                .get("dur")
                .and_then(Json::as_f64)
                .ok_or("complete span missing numeric `dur`")?;
        }
        "i" | "I" => {
            needs_ts(event)?;
        }
        "B" | "E" => {
            needs_ts(event)?;
        }
        "M" => {
            event
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .ok_or("metadata missing `args.name`")?;
        }
        other => return Err(format!("unknown phase `{other}`")),
    }
    if let Some(args) = event.get("args") {
        if args.as_array().is_some() || args.as_str().is_some() {
            return Err("`args` must be an object".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    fn sample_trace() -> Trace {
        let mut t = Trace::new_virtual();
        t.name_process(0, "replay");
        t.name_thread(0, 1, "shard-1");
        t.set_lane(0, 1);
        t.span_at(100, 40, "exec", "tx-3");
        t.record(
            Record::instant(140, "2pc", "2pc.abort")
                .with_arg("tx", 3u64)
                .with_arg("cause", "lock-conflict"),
        );
        t
    }

    #[test]
    fn export_shape_and_validation() {
        let doc = to_perfetto(&sample_trace());
        assert_eq!(validate(&doc), Ok(4)); // 2 metadata + span + instant
        let rendered = doc.render();
        assert!(rendered.contains("\"ph\":\"X\""));
        assert!(rendered.contains("\"ph\":\"i\""));
        assert!(rendered.contains("lock-conflict"));
        // Round-trips through the JSON parser (arbitrary names survive).
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(validate(&reparsed), Ok(4));
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn hostile_span_names_survive_export() {
        let mut t = Trace::new_virtual();
        t.span_at(0, 1, "stage", "quote\" slash\\ control\u{1} astral😀");
        let doc = to_perfetto(&t);
        let rendered = doc.render();
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(reparsed.render(), rendered);
        assert_eq!(validate(&reparsed), Ok(1));
    }

    #[test]
    fn validate_rejects_malformed() {
        for (bad, why) in [
            (r#"{"x": 1}"#, "no traceEvents"),
            (r#"{"traceEvents": 3}"#, "not an array"),
            (
                r#"{"traceEvents": [{"ph":"X","name":"a","pid":0,"tid":0,"ts":1}]}"#,
                "X without dur",
            ),
            (
                r#"{"traceEvents": [{"ph":"?","name":"a","pid":0,"tid":0}]}"#,
                "unknown phase",
            ),
            (
                r#"{"traceEvents": [{"name":"a","pid":0,"tid":0}]}"#,
                "missing ph",
            ),
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(validate(&doc).is_err(), "accepted: {why}");
        }
    }
}
