/root/repo/target/debug/deps/blockpart_metrics-65e7475c6a599326.d: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_metrics-65e7475c6a599326.rmeta: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/calendar.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/report.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
