/root/repo/target/debug/deps/fig2-b9f5be543982af53.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-b9f5be543982af53: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
