//! Integration tests for the adversarial scenario registry: every
//! registered scenario is deterministic and worker-count independent,
//! composition is count-additive, and the phase-shifting hub scenario
//! actually stresses the TR-METIS trigger harder than the friendly
//! chain.

use blockpart::core::{Experiment, ScenarioRegistry, StrategyRegistry};
use blockpart::ethereum::gen::GeneratorConfig;
use blockpart::graph::InteractionLog;
use blockpart::types::ShardCount;
use proptest::prelude::*;

fn tiny_config(seed: u64) -> GeneratorConfig {
    // a 14-day toy at quarter rate: a few hundred organic transactions,
    // enough for every injector's window to see traffic
    GeneratorConfig::test_scale(seed).with_scale(0.25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    // Every registered scenario is byte-identical across reruns for a
    // fixed seed, and its interaction log builds the same graph at any
    // worker count.
    #[test]
    fn every_scenario_is_deterministic(seed in 0u64..1000) {
        let registry = ScenarioRegistry::with_builtins();
        let config = tiny_config(seed);
        for name in registry.factory_names() {
            let spec = match registry.resolve(name) {
                Ok(spec) => spec,
                Err(e) => panic!("{name}: {e}"),
            };
            let a = spec.build(&config);
            let b = spec.build(&config);
            prop_assert_eq!(&a.txs, &b.txs, "{} reruns diverged", name);
            prop_assert_eq!(a.log.events(), b.log.events(), "{} logs diverged", name);
            let serial = InteractionLog::graph_of_workers(a.log.events(), 1).to_csr_workers(1);
            let parallel = InteractionLog::graph_of_workers(a.log.events(), 4).to_csr_workers(4);
            prop_assert_eq!(serial, parallel, "{} graph depends on worker count", name);
        }
    }

    // Composing scenarios adds exactly the transactions each part
    // would inject alone: injectors pace on organic traffic only, so
    // composition is count-additive over the friendly baseline.
    #[test]
    fn composition_preserves_transaction_count(
        seed in 0u64..1000,
        first in 0usize..5,
        second in 0usize..5,
    ) {
        let registry = ScenarioRegistry::with_builtins();
        let hostiles = ["hub-burst", "dummy-spam", "dex-arb", "aa-batch", "nft-mint"];
        let a = hostiles[first];
        // pick a distinct second part (the vendored proptest has no
        // prop_assume; stepping the index keeps every case meaningful)
        let b = if first == second {
            hostiles[(second + 1) % hostiles.len()]
        } else {
            hostiles[second]
        };
        let config = tiny_config(seed);
        let base = registry.resolve("friendly").unwrap().build(&config).txs.len();
        let only_a = registry.resolve(a).unwrap().build(&config).txs.len();
        let only_b = registry.resolve(b).unwrap().build(&config).txs.len();
        let both = registry
            .compose(&format!("{a}+{b}"))
            .unwrap()
            .build(&config)
            .txs
            .len();
        prop_assert_eq!(
            both - base,
            (only_a - base) + (only_b - base),
            "{}+{} is not count-additive", a, b
        );
    }
}

/// The phase-shifting hub scenario is the designed stress test for the
/// TR-METIS threshold trigger: each hub rotation skews shard load until
/// the balance trigger fires, so at equal scale it must force strictly
/// more repartitions (and far more vertex moves) than the friendly
/// chain. The margin is deterministic — fixed seed, virtual clock.
#[test]
fn phase_shift_triggers_more_trmetis_repartitions_than_friendly() {
    let scenarios = ScenarioRegistry::with_builtins();
    let strategies = StrategyRegistry::with_builtins();
    let config = GeneratorConfig::demo_scale(42).with_scale(1.0e-4);
    let reparts_of = |scenario: &str| {
        let report = Experiment::from_generator(config.clone())
            .named_scenario(&scenarios, scenario)
            .expect("scenario resolves")
            .named_strategies(&strategies, "tr-metis[interval=1;balance=1.5]")
            .expect("strategy resolves")
            .shard_counts(vec![ShardCount::TWO])
            .replay(false)
            .run();
        let sim = report.runs[0].offline.clone().expect("offline stage ran");
        (sim.repartitions, sim.total_moves)
    };
    let (friendly_reparts, friendly_moves) = reparts_of("friendly");
    let (shifted_reparts, shifted_moves) = reparts_of("phase-shift[phases=10;intensity=2]");
    assert!(
        shifted_reparts > friendly_reparts,
        "phase-shift must out-trigger the friendly chain: {shifted_reparts} vs {friendly_reparts}"
    );
    assert!(
        shifted_moves > friendly_moves * 2,
        "rotating hubs should force far more state movement: \
         {shifted_moves} vs {friendly_moves} moves"
    );
}
