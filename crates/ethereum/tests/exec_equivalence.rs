//! Property tests for the execution-engine contract: speculative overlay
//! execution and the parallel engine are byte-identical to direct serial
//! execution — receipts, both world maps, and the allocator floor —
//! for arbitrary transaction sequences, any lane count, and across reruns.

use blockpart_ethereum::evm::{ExecContext, GasSchedule, Vm};
use blockpart_ethereum::exec::{
    speculate, ExecRequest, ExecutionEngine, ParallelEngine, SerialEngine,
};
use blockpart_ethereum::{AccountState, ContractState, ContractTemplate, World};
use blockpart_ethereum::{Transaction, TxPayload};
use blockpart_types::{Address, Gas, Timestamp, Wei};
use proptest::prelude::*;

/// A deterministic world with users and one contract of every template —
/// hubs, forwarders, creators — so speculation exercises every opcode.
fn seed_world() -> (World, Vec<Address>) {
    let mut world = World::new();
    let users: Vec<Address> = (0..6)
        .map(|i| world.new_user(Wei::new(1_000_000 + 70_000 * i)))
        .collect();
    let token = world.create_contract(ContractTemplate::Token, users[0], users[0].index());
    let crowdsale = world.create_contract(ContractTemplate::Crowdsale, users[1], users[1].index());
    let wallet = world.create_contract(ContractTemplate::Wallet, users[2], users[2].index());
    let factory = world.create_contract(ContractTemplate::Factory, users[3], 0);
    let game = world.create_contract(ContractTemplate::Game, users[4], users[4].index());
    let registry = world.create_contract(ContractTemplate::Registry, users[5], 7);
    let mut targets = users.clone();
    targets.extend([token, crowdsale, wallet, factory, game, registry]);
    (world, targets)
}

/// Byte-exact view of a world: both record maps (an address can hold an
/// account *and* a contract record after nonce materialization) plus the
/// allocator floor, in sorted order.
type Snapshot = (
    u64,
    Vec<(Address, Option<AccountState>, Option<ContractState>)>,
);

fn snapshot(world: &World) -> Snapshot {
    let mut addrs: Vec<Address> = world.addresses().collect();
    addrs.sort_unstable();
    addrs.dedup();
    let rows = addrs
        .into_iter()
        .map(|a| (a, world.account(a).copied(), world.contract(a).cloned()))
        .collect();
    (world.address_floor(), rows)
}

/// One random transaction: sender is always a user, the target anything,
/// the payload spans every variant (including out-of-range templates).
fn tx_strategy() -> impl Strategy<Value = (usize, usize, u64, u32, u32, u64)> {
    (
        0usize..6,    // from: user slot
        0usize..12,   // to: any of the 12 seeded addresses
        0u64..=2_000, // value
        0u32..3,      // gas-limit selector
        0u32..4,      // payload selector
        0u64..50,     // payload arg / template id
    )
}

fn build_tx(targets: &[Address], pick: (usize, usize, u64, u32, u32, u64)) -> Transaction {
    let (from, to, value, gas_sel, kind, arg) = pick;
    let gas = [21_000u64, 60_000, 400_000][gas_sel as usize];
    let payload = match kind {
        0 => TxPayload::Transfer,
        1 => TxPayload::Call { arg },
        2 => TxPayload::Create {
            template: arg % 6,
            arg,
        },
        // deliberately out-of-range template ids: creation fails, but the
        // failure must replay identically through the overlay
        _ => TxPayload::Create {
            template: 6 + arg,
            arg,
        },
    };
    Transaction {
        from: targets[from],
        to: targets[to],
        value: Wei::new(value),
        gas_limit: Gas::new(gas),
        payload,
    }
}

fn requests(targets: &[Address], picks: &[(usize, usize, u64, u32, u32, u64)]) -> Vec<ExecRequest> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &pick)| {
            let tx = build_tx(targets, pick);
            let ctx = ExecContext::new(
                Timestamp::from_secs(50),
                0x9e37 ^ (i as u64) << 7,
                tx.gas_limit,
            )
            .with_schedule(GasSchedule::eip150());
            ExecRequest::new(tx, ctx)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Speculate-then-apply is byte-identical to direct execution at
    // every step of an arbitrary sequence, and every record the apply
    // changes is declared in the speculation's write set.
    #[test]
    fn overlay_replays_direct_execution(picks in proptest::collection::vec(tx_strategy(), 1..30)) {
        let (base, targets) = seed_world();
        let mut direct = base.clone();
        let mut overlaid = base;
        for req in requests(&targets, &picks) {
            let expect = Vm::execute(&mut direct, &req.tx, &req.ctx);
            let spec = speculate(&overlaid, &req.tx, &req.ctx);
            prop_assert_eq!(spec.receipt(), &expect);
            // declared sets are sorted and duplicate-free
            let reads = spec.read_addresses();
            let writes = spec.write_addresses();
            prop_assert!(reads.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(writes.windows(2).all(|w| w[0] < w[1]));
            let before: std::collections::HashMap<Address, _> = snapshot(&overlaid)
                .1
                .into_iter()
                .map(|row| (row.0, row))
                .collect();
            spec.apply(&mut overlaid);
            let after = snapshot(&overlaid);
            for row in &after.1 {
                let changed = before.get(&row.0).is_none_or(|b| b != row);
                if changed {
                    prop_assert!(
                        writes.contains(&row.0),
                        "changed {:?} not declared written", row.0
                    );
                }
            }
            prop_assert_eq!(snapshot(&direct), snapshot(&overlaid));
        }
    }

    // The parallel engine commits byte-identically to the serial engine
    // for any lane count, and its scheduler counters are lane-independent
    // and rerun-stable.
    #[test]
    fn parallel_matches_serial_for_any_lane_count(
        picks in proptest::collection::vec(tx_strategy(), 1..40),
        retry in 0u32..3,
        window in 1usize..12,
    ) {
        let (base, targets) = seed_world();
        let block = requests(&targets, &picks);

        let mut serial_world = base.clone();
        let serial = SerialEngine.execute_block(&mut serial_world, &block);
        let want = snapshot(&serial_world);

        let mut metrics_seen = Vec::new();
        for lanes in [1usize, 2, 5] {
            let engine = ParallelEngine::new()
                .with_lanes(lanes)
                .with_retry(retry)
                .with_window(window);
            let mut world = base.clone();
            let out = engine.execute_block(&mut world, &block);
            prop_assert_eq!(&out.receipts, &serial.receipts, "lanes={}", lanes);
            prop_assert_eq!(snapshot(&world), want.clone(), "lanes={}", lanes);
            metrics_seen.push(out.metrics);

            // rerun with the same lane count: identical metrics
            let mut world2 = base.clone();
            let again = engine.execute_block(&mut world2, &block);
            prop_assert_eq!(again.metrics, out.metrics);
        }
        prop_assert_eq!(metrics_seen[0], metrics_seen[1]);
        prop_assert_eq!(metrics_seen[1], metrics_seen[2]);
    }
}
