/root/repo/target/debug/deps/figures-3b6ef6371ffb22c7.d: tests/figures.rs

/root/repo/target/debug/deps/figures-3b6ef6371ffb22c7: tests/figures.rs

tests/figures.rs:
