/root/repo/target/debug/deps/fig1-e0616a48b6bb238a.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-e0616a48b6bb238a: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
