//! Graph contraction: collapse a matching into a coarser graph.

use blockpart_graph::Csr;
use blockpart_types::{resolve_workers, split_ranges};

/// Below this many coarse vertices contraction runs on the calling
/// thread even when more workers are available.
const PARALLEL_COARSE_THRESHOLD: usize = 4_096;

/// One worker's slice of coarse CSR arrays: row lengths, targets, weights.
type RowSegment = (Vec<usize>, Vec<u32>, Vec<u64>);

/// Contracts `csr` along `mate` (as produced by
/// [`match_vertices`](super::matching::match_vertices)).
///
/// Returns the coarse graph and the fine→coarse vertex map. Coarse vertex
/// weights are the sums of their constituents; edges between the two
/// endpoints of a matched pair vanish (their weight is *hidden* inside the
/// coarse vertex, protecting it from ever being cut); parallel coarse
/// edges merge by summing.
///
/// # Panics
///
/// Panics (debug builds) if `mate` is not a symmetric matching of the
/// right length.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::multilevel::coarsen::contract;
///
/// // path 0-1-2-3, match (0,1) and (2,3)
/// let csr = Csr::from_edges(4, &[(0, 1, 5), (1, 2, 2), (2, 3, 5)]);
/// let (coarse, map) = contract(&csr, &[1, 0, 3, 2]);
/// assert_eq!(coarse.node_count(), 2);
/// assert_eq!(coarse.edge_count(), 1); // the 1-2 edge survives with weight 2
/// assert_eq!(coarse.vertex_weight(map[0] as usize), 2);
/// ```
pub fn contract(csr: &Csr, mate: &[u32]) -> (Csr, Vec<u32>) {
    contract_workers(csr, mate, 1)
}

/// [`contract`] on up to `workers` threads (`0` = automatic).
///
/// Coarse rows are independent given the fine→coarse map, so workers own
/// contiguous coarse-vertex ranges and build their row segments in
/// parallel; the segments concatenate in range order. Byte-identical
/// output for every worker count.
pub fn contract_workers(csr: &Csr, mate: &[u32], workers: usize) -> (Csr, Vec<u32>) {
    let n = csr.node_count();
    debug_assert_eq!(mate.len(), n, "matching length mismatch");

    // Assign coarse ids: the smaller endpoint of each pair is the
    // representative, visited in index order for determinism. Remember
    // each coarse vertex's representative so constituents can be walked
    // without hashing.
    let mut cmap = vec![u32::MAX; n];
    let mut reps: Vec<u32> = Vec::with_capacity(n / 2 + 1);
    for v in 0..n {
        let m = mate[v] as usize;
        debug_assert_eq!(mate[m] as usize, v, "matching must be symmetric");
        if v <= m {
            cmap[v] = reps.len() as u32;
            cmap[m] = reps.len() as u32;
            reps.push(v as u32);
        }
    }

    let coarse_n = reps.len();
    let mut vwgt = vec![0u64; coarse_n];
    for v in 0..n {
        vwgt[cmap[v] as usize] += csr.vertex_weight(v);
    }

    // Build coarse adjacency row by row with a sort-merge over the (at
    // most two) constituent neighbour lists — no per-vertex hash maps.
    // Rows are independent, so workers own contiguous coarse ranges.
    let auto = workers == 0;
    let workers = resolve_workers(workers);
    let ranges = if workers == 1 || (auto && coarse_n < PARALLEL_COARSE_THRESHOLD) {
        split_ranges(coarse_n, 1)
    } else {
        split_ranges(coarse_n, workers)
    };
    let mut parts: Vec<Option<RowSegment>> = Vec::new();
    parts.resize_with(ranges.len(), || None);
    let build_range = |range: std::ops::Range<usize>| {
        let mut lens = Vec::with_capacity(range.len());
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        for c in range {
            scratch.clear();
            let rep = reps[c] as usize;
            let partner = mate[rep] as usize;
            let c = c as u32;
            for (u, w) in csr.neighbors(rep) {
                let cu = cmap[u as usize];
                if cu != c {
                    scratch.push((cu, w));
                }
            }
            if partner != rep {
                for (u, w) in csr.neighbors(partner) {
                    let cu = cmap[u as usize];
                    if cu != c {
                        scratch.push((cu, w));
                    }
                }
            }
            scratch.sort_unstable_by_key(|&(t, _)| t);
            let before = adjncy.len();
            let mut i = 0;
            while i < scratch.len() {
                let (t, mut w) = scratch[i];
                i += 1;
                while i < scratch.len() && scratch[i].0 == t {
                    w += scratch[i].1;
                    i += 1;
                }
                adjncy.push(t);
                adjwgt.push(w);
            }
            lens.push(adjncy.len() - before);
        }
        (lens, adjncy, adjwgt)
    };
    if ranges.len() <= 1 {
        for (slot, range) in parts.iter_mut().zip(&ranges) {
            *slot = Some(build_range(range.clone()));
        }
    } else {
        crossbeam::thread::scope(|scope| {
            for (slot, range) in parts.iter_mut().zip(&ranges) {
                let range = range.clone();
                let build_range = &build_range;
                scope.spawn(move |_| *slot = Some(build_range(range)));
            }
        })
        .expect("contraction worker panicked");
    }

    let mut xadj = Vec::with_capacity(coarse_n + 1);
    let mut adjncy = Vec::with_capacity(csr.edge_count());
    let mut adjwgt = Vec::with_capacity(csr.edge_count());
    xadj.push(0);
    for part in parts {
        let (lens, t, w) = part.expect("range contracted");
        let mut at = *xadj.last().expect("xadj starts non-empty");
        for len in lens {
            at += len;
            xadj.push(at);
        }
        adjncy.extend_from_slice(&t);
        adjwgt.extend_from_slice(&w);
    }
    (Csr::from_parts(xadj, adjncy, adjwgt, vwgt), cmap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::matching::{match_vertices, MatchingScheme};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_total_vertex_weight() {
        let csr = Csr::from_edges(6, &[(0, 1, 3), (1, 2, 4), (3, 4, 5), (4, 5, 1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng);
        let (coarse, _) = contract(&csr, &mate);
        assert_eq!(coarse.total_vertex_weight(), csr.total_vertex_weight());
        coarse.validate().unwrap();
    }

    #[test]
    fn identity_matching_clones_graph() {
        let csr = Csr::from_edges(3, &[(0, 1, 2), (1, 2, 3)]);
        let (coarse, map) = contract(&csr, &[0, 1, 2]);
        assert_eq!(coarse.node_count(), 3);
        assert_eq!(coarse.edge_count(), 2);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn merges_parallel_coarse_edges() {
        // square 0-1-2-3-0; matching (0,1), (2,3) creates two coarse
        // vertices joined by two fine edges (1-2 and 3-0) that must merge.
        let csr = Csr::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 0, 4)]);
        let (coarse, _) = contract(&csr, &[1, 0, 3, 2]);
        assert_eq!(coarse.node_count(), 2);
        assert_eq!(coarse.edge_count(), 1);
        assert_eq!(coarse.total_edge_weight(), 6); // 2 + 4
        coarse.validate().unwrap();
    }

    #[test]
    fn hidden_weight_is_edge_weight_of_matching() {
        let csr = Csr::from_edges(4, &[(0, 1, 5), (1, 2, 2), (2, 3, 5)]);
        let (coarse, _) = contract(&csr, &[1, 0, 3, 2]);
        // 5 + 5 hidden, 2 survives
        assert_eq!(coarse.total_edge_weight(), 2);
    }

    #[test]
    fn repeated_contraction_shrinks_to_constant() {
        let edges: Vec<(u32, u32, u64)> = (0..255).map(|i| (i, i + 1, 1)).collect();
        let mut csr = Csr::from_edges(256, &edges);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            if csr.node_count() <= 4 {
                break;
            }
            let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng);
            let (coarse, _) = contract(&csr, &mate);
            assert!(coarse.node_count() < csr.node_count());
            csr = coarse;
        }
        assert!(csr.node_count() <= 4, "stalled at {}", csr.node_count());
    }
}
