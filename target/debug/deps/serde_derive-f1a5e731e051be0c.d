/root/repo/target/debug/deps/serde_derive-f1a5e731e051be0c.d: third_party/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-f1a5e731e051be0c.rmeta: third_party/serde_derive/src/lib.rs Cargo.toml

third_party/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
