/root/repo/target/debug/deps/criterion-34fcdb20fb35d53d.d: third_party/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-34fcdb20fb35d53d.rmeta: third_party/criterion/src/lib.rs Cargo.toml

third_party/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
