/root/repo/target/debug/deps/proptest_graph-21598a6c981b2997.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-21598a6c981b2997: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
