//! The message vocabulary of the two-phase-commit protocol and the
//! network latency model.

use blockpart_ethereum::AddressState;
use blockpart_types::{Address, ShardId};

use crate::event::TxId;

/// One protocol message in flight between two shards.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending shard.
    pub from: ShardId,
    /// Protocol content.
    pub payload: Payload,
}

/// The 2PC protocol messages.
///
/// State ships with the protocol: a `yes` vote carries the participant's
/// snapshots of the addresses it locked (so the coordinator can assemble
/// a scratch world), and `Commit` carries the post-execution write-set
/// back.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Coordinator → participant: lock this transaction's footprint on
    /// your shard and vote.
    Prepare {
        /// The transaction being coordinated.
        tx: TxId,
        /// 1-based attempt counter (retries after aborts).
        attempt: u32,
    },
    /// Participant → coordinator: lock outcome, with state snapshots on
    /// success.
    Vote {
        /// The transaction being coordinated.
        tx: TxId,
        /// Whether every footprint address was locked.
        ok: bool,
        /// Snapshots of the locked addresses' state.
        shipped: Vec<(Address, AddressState)>,
    },
    /// Coordinator → participant: apply this write-set, release locks,
    /// acknowledge.
    Commit {
        /// The transaction being coordinated.
        tx: TxId,
        /// Post-execution state for the participant's footprint
        /// addresses.
        writes: Vec<(Address, AddressState)>,
    },
    /// Coordinator → participant: release locks, the round failed.
    Abort {
        /// The transaction being coordinated.
        tx: TxId,
    },
    /// Participant → coordinator: commit applied.
    Ack {
        /// The transaction being coordinated.
        tx: TxId,
    },
}

/// Fixed-latency network: intra-shard delivery is free, inter-shard
/// delivery costs one configured one-way latency.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way inter-shard latency in microseconds.
    pub latency_us: u64,
}

impl NetworkModel {
    /// Delivery delay from `from` to `to`.
    pub fn delay(&self, from: ShardId, to: ShardId) -> u64 {
        if from == to {
            0
        } else {
            self.latency_us
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delivery_is_free() {
        let net = NetworkModel { latency_us: 500 };
        assert_eq!(net.delay(ShardId::new(1), ShardId::new(1)), 0);
        assert_eq!(net.delay(ShardId::new(0), ShardId::new(1)), 500);
    }
}
