/root/repo/target/debug/deps/generator-683a6573e10d08b7.d: crates/bench/benches/generator.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator-683a6573e10d08b7.rmeta: crates/bench/benches/generator.rs Cargo.toml

crates/bench/benches/generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
