/root/repo/target/debug/deps/fig2-7b53b7d4b299ef7c.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-7b53b7d4b299ef7c: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
