/root/repo/target/debug/deps/fig1-887a6fbaf82cf723.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-887a6fbaf82cf723.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
