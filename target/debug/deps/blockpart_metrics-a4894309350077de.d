/root/repo/target/debug/deps/blockpart_metrics-a4894309350077de.d: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libblockpart_metrics-a4894309350077de.rlib: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

/root/repo/target/debug/deps/libblockpart_metrics-a4894309350077de.rmeta: crates/metrics/src/lib.rs crates/metrics/src/calendar.rs crates/metrics/src/concentration.rs crates/metrics/src/histogram.rs crates/metrics/src/report.rs crates/metrics/src/series.rs crates/metrics/src/summary.rs

crates/metrics/src/lib.rs:
crates/metrics/src/calendar.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/report.rs:
crates/metrics/src/series.rs:
crates/metrics/src/summary.rs:
