/root/repo/target/debug/deps/blockpart_bench-d5d7ad79a64ffce6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libblockpart_bench-d5d7ad79a64ffce6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libblockpart_bench-d5d7ad79a64ffce6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
