/root/repo/target/debug/deps/fig4-b3d044aa5d942a4b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-b3d044aa5d942a4b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
