/root/repo/target/debug/deps/fig5-fdba61eebadfb6a2.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-fdba61eebadfb6a2.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
