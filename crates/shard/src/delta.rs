//! The difference between two vertex→shard assignments: which addresses
//! move, grouped by (source, destination) shard pair.
//!
//! Both consumers of "vertices moved" go through this type so they can
//! never disagree: the offline simulator derives its per-window `moves`
//! metric from a delta, and the live repartitioning service turns the
//! same delta into actual 2PC state-migration batches.

use std::collections::BTreeMap;

use blockpart_types::{Address, ShardId};
use serde::{Deserialize, Serialize};

/// Moved addresses grouped by `(from, to)` shard pair, each group sorted
/// by address. Construction is order-insensitive, so deltas computed
/// from hash maps are still deterministic.
///
/// # Examples
///
/// ```
/// use blockpart_shard::AssignmentDelta;
/// use blockpart_types::{Address, ShardId};
///
/// let a = Address::from_index(1);
/// let delta = AssignmentDelta::between(
///     [a],
///     |_| ShardId::new(0),
///     |_| ShardId::new(1),
/// );
/// assert_eq!(delta.total_moved(), 1);
/// assert_eq!(delta.pairs().next().unwrap().0, (ShardId::new(0), ShardId::new(1)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentDelta {
    moves: BTreeMap<(ShardId, ShardId), Vec<Address>>,
}

impl AssignmentDelta {
    /// Computes the delta over `addresses`: every address whose shard
    /// under `new` differs from its shard under `old` is recorded as a
    /// move. Duplicate addresses are considered once.
    pub fn between(
        addresses: impl IntoIterator<Item = Address>,
        old: impl Fn(Address) -> ShardId,
        new: impl Fn(Address) -> ShardId,
    ) -> Self {
        let mut moves: BTreeMap<(ShardId, ShardId), Vec<Address>> = BTreeMap::new();
        for a in addresses {
            let (from, to) = (old(a), new(a));
            if from != to {
                moves.entry((from, to)).or_default().push(a);
            }
        }
        for group in moves.values_mut() {
            group.sort_unstable();
            group.dedup();
        }
        Self { moves }
    }

    /// Returns `true` when nothing moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Total number of moved addresses.
    pub fn total_moved(&self) -> u64 {
        self.moves.values().map(|g| g.len() as u64).sum()
    }

    /// The `(from, to)` groups in ascending shard-pair order.
    pub fn pairs(&self) -> impl Iterator<Item = ((ShardId, ShardId), &[Address])> {
        self.moves
            .iter()
            .map(|(&pair, group)| (pair, group.as_slice()))
    }

    /// Every moved address with its `(from, to)` pair, in pair-major,
    /// address-minor order.
    pub fn moves(&self) -> impl Iterator<Item = (Address, ShardId, ShardId)> + '_ {
        self.moves
            .iter()
            .flat_map(|(&(from, to), group)| group.iter().map(move |&a| (a, from, to)))
    }

    /// Splits the delta into migration batches of at most
    /// `batch_accounts` addresses, each within one `(from, to)` pair —
    /// the unit a live migration ships through one 2PC round.
    ///
    /// # Panics
    ///
    /// Panics if `batch_accounts` is zero.
    pub fn batches(&self, batch_accounts: usize) -> Vec<MigrationBatch> {
        assert!(batch_accounts > 0, "batch size must be non-zero");
        let mut out = Vec::new();
        for (&(from, to), group) in &self.moves {
            for chunk in group.chunks(batch_accounts) {
                out.push(MigrationBatch {
                    from,
                    to,
                    addrs: chunk.to_vec(),
                });
            }
        }
        out
    }
}

/// One unit of live state migration: a bounded set of addresses leaving
/// `from` for `to` in a single prepare/commit round.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationBatch {
    /// Source shard (current owner of the state).
    pub from: ShardId,
    /// Destination shard (owner under the new assignment).
    pub to: ShardId,
    /// Addresses moving, sorted.
    pub addrs: Vec<Address>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn shard(i: u16) -> ShardId {
        ShardId::new(i)
    }

    #[test]
    fn identical_assignments_produce_empty_delta() {
        let delta = AssignmentDelta::between((0..10).map(addr), |_| shard(0), |_| shard(0));
        assert!(delta.is_empty());
        assert_eq!(delta.total_moved(), 0);
        assert!(delta.batches(4).is_empty());
    }

    #[test]
    fn moves_group_by_shard_pair_and_sort() {
        // even addresses move 0→1, odd addresses move 1→2; feed them in
        // descending order to prove the delta sorts
        let delta = AssignmentDelta::between(
            (0..8).rev().map(addr),
            |a| shard((a.index() % 2) as u16),
            |a| shard((a.index() % 2) as u16 + 1),
        );
        assert_eq!(delta.total_moved(), 8);
        let pairs: Vec<_> = delta.pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, (shard(0), shard(1)));
        assert_eq!(pairs[1].0, (shard(1), shard(2)));
        for (_, group) in pairs {
            assert!(group.windows(2).all(|w| w[0] < w[1]), "sorted {group:?}");
        }
    }

    #[test]
    fn duplicates_count_once() {
        let delta =
            AssignmentDelta::between([addr(3), addr(3), addr(3)], |_| shard(0), |_| shard(1));
        assert_eq!(delta.total_moved(), 1);
    }

    #[test]
    fn batches_respect_pair_boundaries_and_size() {
        let delta = AssignmentDelta::between(
            (0..10).map(addr),
            |a| shard((a.index() % 2) as u16),
            |a| shard(((a.index() % 2) + 1) as u16),
        );
        let batches = delta.batches(2);
        assert_eq!(batches.len(), 6); // 5 per pair → 3 chunks of ≤2 each
        for b in &batches {
            assert!(b.addrs.len() <= 2);
            assert_ne!(b.from, b.to);
        }
        let total: usize = batches.iter().map(|b| b.addrs.len()).sum();
        assert_eq!(total as u64, delta.total_moved());
    }

    #[test]
    fn order_insensitive_construction() {
        let forward = AssignmentDelta::between(
            (0..16).map(addr),
            |a| shard((a.index() % 3) as u16),
            |a| shard((a.index() % 4) as u16),
        );
        let reverse = AssignmentDelta::between(
            (0..16).rev().map(addr),
            |a| shard((a.index() % 3) as u16),
            |a| shard((a.index() % 4) as u16),
        );
        assert_eq!(forward, reverse);
    }
}
