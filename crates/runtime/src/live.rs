//! A long-running execution session with online assignment changes.
//!
//! [`ShardedRuntime`](crate::ShardedRuntime) replays one workload over
//! one fixed assignment and tears everything down. A [`LiveSession`]
//! keeps the per-shard workers — worlds, lock tables, virtual clock —
//! alive across *segments* of the transaction stream, and lets a
//! repartitioning policy swap the assignment between segments. The swap
//! is not free: the state of every moved account is shipped shard-to-
//! shard through the same 2PC machinery the foreground traffic uses,
//! while that traffic keeps flowing. Migration cost therefore shows up
//! where it belongs — as lock conflicts, abort spikes and occupied
//! execution units in the foreground's own report.
//!
//! The mechanism, per staged rebalance:
//!
//! 1. **Epoch barrier.** Segments only start when every worker is
//!    quiescent, so the routing swap is atomic: all transactions of the
//!    next segment are footprinted under the *new* assignment.
//! 2. **Guard locks.** Before any event of the segment runs, each
//!    destination shard locks the addresses it is about to receive.
//!    Foreground transactions touching moving state block (local) or
//!    abort-and-retry (cross-shard) until the state lands — that is the
//!    abort spike the report measures.
//! 3. **Migration batches.** The assignment delta is chunked into
//!    batches, each a migration-kind transaction record
//!    coordinated by the destination: Prepare locks the source
//!    copies and ships them in the Vote, the "execution" step models the
//!    install cost by bytes, Commit discards the source copies, and the
//!    final Ack completes the batch. Batches are paced so migration
//!    traffic does not monopolize the network instant.

use std::collections::BTreeMap;

use blockpart_ethereum::{ExecutedTx, World};
use blockpart_obs::Trace;
use blockpart_shard::AssignmentDelta;
use blockpart_types::{Address, ShardId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::clock::{EventQueue, Micros};
use crate::event::{Event, TxId};
use crate::net::NetworkModel;
use crate::shard_worker::{Ctx, ShardWorker, TxKind, TxRecord};
use crate::{drive, payload_record, Assignment, Detail, RuntimeConfig, RuntimeReport};

/// Batching and pacing of live state migration.
///
/// # Examples
///
/// ```
/// use blockpart_runtime::MigrationConfig;
///
/// let cfg = MigrationConfig::default();
/// assert_eq!(cfg.batch_accounts, 64);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Maximum accounts shipped per 2PC migration batch.
    pub batch_accounts: usize,
    /// Gap between consecutive batch kickoffs (virtual µs).
    pub pacing_us: u64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            batch_accounts: 64,
            pacing_us: 1_000,
        }
    }
}

/// What one executed migration cost, measured inside the engine.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// 2PC batches shipped.
    pub batches: u64,
    /// Accounts whose owning shard changed.
    pub accounts: u64,
    /// State bytes shipped between shards.
    pub bytes: u64,
    /// Virtual time from the epoch barrier to the last batch's ack.
    pub wall_us: u64,
}

/// The outcome of one segment of a live session: the foreground
/// traffic's report plus, when a rebalance executed in this segment,
/// the migration's measured cost.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// Foreground transactions offered in this segment.
    pub txs: usize,
    /// Foreground transactions committed.
    pub committed: u64,
    /// Foreground transactions dropped after exhausting retries.
    pub failed: u64,
    /// Foreground transactions whose footprint spanned shards.
    pub cross_shard_txs: usize,
    /// Foreground 2PC prepare rounds.
    pub prepare_rounds: u64,
    /// Foreground 2PC rounds aborted.
    pub aborted_rounds: u64,
    /// Local pump passes blocked on a held lock.
    pub local_conflicts: u64,
    /// `aborted_rounds` split by cause.
    pub abort_causes: BTreeMap<String, u64>,
    /// Median foreground commit latency.
    pub p50_commit_latency_us: u64,
    /// Tail foreground commit latency.
    pub p99_commit_latency_us: u64,
    /// Virtual segment start.
    pub start_us: Micros,
    /// Virtual time of the segment's last event.
    pub end_us: Micros,
    /// Foreground commits per virtual second.
    pub throughput_tps: f64,
    /// Migration cost, when a staged rebalance executed here.
    pub migration: Option<MigrationStats>,
}

/// A staged assignment change awaiting the next epoch barrier.
struct Staged {
    next: Assignment,
    delta: AssignmentDelta,
}

/// A persistent sharded execution session: workers survive across
/// segments, the virtual clock never resets, and staged rebalances are
/// executed as live 2PC state migrations.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::World;
/// use blockpart_runtime::{Assignment, LiveSession, MigrationConfig, RuntimeConfig};
/// use blockpart_types::ShardCount;
///
/// let k = ShardCount::TWO;
/// let mut session = LiveSession::new(
///     RuntimeConfig::new(k),
///     Assignment::hashed(k),
///     &World::new(),
/// );
/// let report = session.run_segment(&[], &MigrationConfig::default());
/// assert_eq!(report.committed, 0);
/// ```
pub struct LiveSession {
    cfg: RuntimeConfig,
    assignment: Assignment,
    workers: Vec<ShardWorker>,
    staged: Option<Staged>,
    clock_us: Micros,
    next_global_tx: u64,
    segments: usize,
    detail: Detail,
    trace: Trace,
}

impl LiveSession {
    /// Opens a session over shard slices of `world` without
    /// instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's and assignment's shard counts
    /// disagree.
    pub fn new(cfg: RuntimeConfig, assignment: Assignment, world: &World) -> Self {
        Self::with_detail(cfg, assignment, world, Detail::Off)
    }

    /// Opens a session collecting the full virtual-clock trace
    /// (migration spans included); retrieve it with
    /// [`finish`](Self::finish).
    pub fn new_traced(cfg: RuntimeConfig, assignment: Assignment, world: &World) -> Self {
        Self::with_detail(cfg, assignment, world, Detail::Events)
    }

    fn with_detail(
        cfg: RuntimeConfig,
        assignment: Assignment,
        world: &World,
        detail: Detail,
    ) -> Self {
        assert_eq!(cfg.k, assignment.k(), "shard counts disagree");
        let workers = crate::build_workers(&cfg, &assignment, world);
        let mut trace = match detail {
            Detail::Events => Trace::new_virtual(),
            Detail::Metrics => Trace::metrics_only(),
            Detail::Off => Trace::disabled(),
        };
        if detail != Detail::Off {
            trace.name_process(0, "live session (virtual µs)");
            for w in &workers {
                trace.name_thread(0, u32::from(w.id.as_u16()), w.id.to_string());
            }
        }
        LiveSession {
            cfg,
            assignment,
            workers,
            staged: None,
            clock_us: 0,
            next_global_tx: 0,
            segments: 0,
            detail,
            trace,
        }
    }

    /// The routing assignment foreground transactions currently use.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The current virtual time floor of the session.
    pub fn now_us(&self) -> Micros {
        self.clock_us
    }

    /// Whether a rebalance is staged but not yet executed.
    pub fn migration_pending(&self) -> bool {
        self.staged.is_some()
    }

    /// Stages a routing change to execute at the next segment's epoch
    /// barrier. Returns the number of accounts that will move; a
    /// no-move delta stages nothing. Staging again before the next
    /// segment replaces the previous stage.
    ///
    /// # Panics
    ///
    /// Panics if `next` spans a different shard count.
    pub fn stage_rebalance(&mut self, next: Assignment) -> u64 {
        let delta = self.assignment.diff(&next);
        let moved = delta.total_moved();
        self.staged = if moved > 0 {
            Some(Staged { next, delta })
        } else {
            None
        };
        moved
    }

    /// Runs one segment: executes any staged migration while streaming
    /// `txs` through the shards, and reports what both cost.
    pub fn run_segment(&mut self, txs: &[ExecutedTx], mig: &MigrationConfig) -> SegmentReport {
        let start = self.clock_us;
        debug_assert!(
            self.workers.iter().all(ShardWorker::is_quiescent),
            "segment started with in-flight work"
        );

        // epoch barrier: swap routing before footprinting the segment
        let staged = self.staged.take();
        if let Some(s) = &staged {
            self.assignment = s.next.clone();
        }

        let mut records: Vec<TxRecord> = txs
            .iter()
            .enumerate()
            .map(|(i, e)| {
                payload_record(
                    &self.cfg,
                    &self.assignment,
                    e,
                    self.next_global_tx + i as u64,
                    start + i as u64 * self.cfg.inter_arrival_us,
                )
            })
            .collect();
        self.next_global_tx += txs.len() as u64;
        let foreground = records.len();

        let mut batches_staged = 0u64;
        if let Some(s) = &staged {
            for (j, batch) in s.delta.batches(mig.batch_accounts).into_iter().enumerate() {
                let txid = TxId((records.len()) as u32);
                // guard locks: the destination seals the moving
                // addresses before any foreground event of this segment
                let guarded = self.workers[batch.to.as_usize()]
                    .locks
                    .try_lock_all(txid, &batch.addrs);
                assert!(guarded, "destination shard had stale locks at the barrier");
                records.push(TxRecord {
                    arrival_us: start + j as u64 * mig.pacing_us,
                    block_time: Timestamp::EPOCH,
                    tx: migration_marker(),
                    home: batch.to,
                    parts: vec![(batch.from, batch.addrs)],
                    entropy: 0,
                    kind: TxKind::Migration,
                });
                batches_staged += 1;
            }
        }

        if self.detail != Detail::Off {
            for worker in &mut self.workers {
                let mut obs = match self.detail {
                    Detail::Events => Trace::new_virtual(),
                    _ => Trace::metrics_only(),
                };
                obs.set_lane(0, u32::from(worker.id.as_u16()));
                obs.set_metric_prefix(format!("{}/", worker.id));
                worker.obs = obs;
            }
        }

        let ctx = Ctx {
            cfg: &self.cfg,
            txs: &records,
            net: NetworkModel {
                latency_us: self.cfg.net_latency_us,
            },
        };
        let mut queue = EventQueue::new();
        for (i, rec) in records.iter().enumerate() {
            queue.push(rec.arrival_us, rec.home, Event::Arrival(TxId(i as u32)));
        }
        let last = drive(&mut self.workers, &mut queue, &ctx);
        let end = last.max(start);
        self.clock_us = end + self.cfg.inter_arrival_us;
        self.segments += 1;

        // harvest this segment's stats and trace, leaving the workers
        // clean for the next segment
        let mut committed = 0u64;
        let mut failed = 0u64;
        let mut prepare_rounds = 0u64;
        let mut aborted_rounds = 0u64;
        let mut local_conflicts = 0u64;
        let mut abort_causes: BTreeMap<String, u64> = BTreeMap::new();
        let mut latencies: Vec<u64> = Vec::new();
        let mut migration = MigrationStats::default();
        let mut migration_last = 0u64;
        for worker in &mut self.workers {
            let stats = std::mem::take(&mut worker.stats);
            committed += stats.committed;
            failed += stats.failed;
            prepare_rounds += stats.prepare_rounds;
            aborted_rounds += stats.aborted_rounds;
            local_conflicts += stats.local_conflicts;
            for (cause, n) in stats.abort_causes {
                *abort_causes.entry(cause.to_string()).or_insert(0) += n;
            }
            latencies.extend(stats.latencies_us);
            migration.batches += stats.migration_batches;
            migration.accounts += stats.migrated_accounts;
            migration.bytes += stats.migrated_bytes;
            migration_last = migration_last.max(stats.migration_last_us);
            if self.detail != Detail::Off {
                self.trace
                    .merge(std::mem::replace(&mut worker.obs, Trace::disabled()));
            }
        }
        let (p50, p99) = RuntimeReport::latency_percentiles(&mut latencies);
        debug_assert_eq!(
            migration.batches, batches_staged,
            "every staged batch must complete within its segment"
        );
        let span = end - start;
        SegmentReport {
            txs: foreground,
            committed,
            failed,
            cross_shard_txs: records[..foreground]
                .iter()
                .filter(|r| r.is_cross())
                .count(),
            prepare_rounds,
            aborted_rounds,
            local_conflicts,
            abort_causes,
            p50_commit_latency_us: p50,
            p99_commit_latency_us: p99,
            start_us: start,
            end_us: end,
            throughput_tps: if span == 0 {
                0.0
            } else {
                committed as f64 * 1e6 / span as f64
            },
            migration: staged.map(|_| MigrationStats {
                wall_us: migration_last.saturating_sub(start),
                ..migration
            }),
        }
    }

    /// The per-shard world slices, for state-conservation checks.
    pub fn worlds(&self) -> impl Iterator<Item = (ShardId, &World)> {
        self.workers.iter().map(|w| (w.id, &w.world))
    }

    /// Every address holding state, with its owning shard — each
    /// address appears exactly once when migration conserved state.
    pub fn resident_addresses(&self) -> Vec<(Address, ShardId)> {
        let mut out: Vec<(Address, ShardId)> = self
            .workers
            .iter()
            .flat_map(|w| w.world.addresses().map(move |a| (a, w.id)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Closes the session and returns the accumulated trace (empty for
    /// untraced sessions).
    pub fn finish(mut self) -> Trace {
        self.trace.sort_by_time();
        self.trace
    }
}

/// The placeholder transaction carried by migration records; never
/// executed (migration skips the VM).
fn migration_marker() -> blockpart_ethereum::Transaction {
    blockpart_ethereum::Transaction {
        from: Address::ZERO,
        to: Address::ZERO,
        value: blockpart_types::Wei::new(0),
        gas_limit: blockpart_types::Gas::new(0),
        payload: blockpart_ethereum::TxPayload::Transfer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_ethereum::{Receipt, Transaction, TxPayload, TxStatus};
    use blockpart_types::{Gas, ShardCount, Wei};
    use std::collections::HashMap;

    fn transfer(from: Address, to: Address, t: u64) -> ExecutedTx {
        let tx = Transaction {
            from,
            to,
            value: Wei::new(1),
            gas_limit: Gas::new(30_000),
            payload: TxPayload::Transfer,
        };
        let receipt = Receipt {
            status: TxStatus::Success,
            gas_used: Gas::new(21_000),
            calls: Vec::new(),
            created: Vec::new(),
        };
        ExecutedTx::new(Timestamp::from_secs(t), tx, &receipt)
    }

    /// Four users pinned to shard 0, then rebalanced two-and-two.
    fn setup() -> (World, Vec<Address>, Assignment, Assignment) {
        let mut world = World::new();
        let addrs: Vec<Address> = (0..4).map(|_| world.new_user(Wei::new(1_000))).collect();
        let all0: HashMap<Address, ShardId> = addrs.iter().map(|&a| (a, ShardId::new(0))).collect();
        let split: HashMap<Address, ShardId> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, ShardId::new((i % 2) as u16)))
            .collect();
        (
            world,
            addrs,
            Assignment::from_map(all0, ShardCount::TWO),
            Assignment::from_map(split, ShardCount::TWO),
        )
    }

    #[test]
    fn migration_moves_state_between_shards() {
        let (world, addrs, before, after) = setup();
        let mut session = LiveSession::new(RuntimeConfig::new(ShardCount::TWO), before, &world);
        let moved = session.stage_rebalance(after);
        assert_eq!(moved, 2); // odd-indexed users move 0 → 1
        let report = session.run_segment(&[], &MigrationConfig::default());
        let mig = report.migration.expect("migration executed");
        assert_eq!(mig.accounts, 2);
        assert!(mig.bytes > 0);
        assert!(mig.wall_us > 0);
        // conservation: each address on exactly one shard, odd ones on 1
        let resident = session.resident_addresses();
        assert_eq!(resident.len(), 4);
        for (i, &a) in addrs.iter().enumerate() {
            let shard = resident
                .iter()
                .find(|(ra, _)| *ra == a)
                .map(|&(_, s)| s)
                .expect("resident");
            assert_eq!(shard, ShardId::new((i % 2) as u16));
        }
    }

    #[test]
    fn foreground_stream_survives_migration() {
        let (world, addrs, before, after) = setup();
        let cfg = RuntimeConfig::new(ShardCount::TWO).with_inter_arrival_us(200);
        let mut session = LiveSession::new(cfg, before, &world);
        let txs: Vec<ExecutedTx> = (0..20)
            .map(|i| transfer(addrs[i % 4], addrs[(i + 1) % 4], 1))
            .collect();
        let quiet = session.run_segment(&txs, &MigrationConfig::default());
        assert_eq!(quiet.committed, 20);
        assert!(quiet.migration.is_none());

        session.stage_rebalance(after);
        let busy = session.run_segment(&txs, &MigrationConfig::default());
        assert_eq!(busy.committed, 20, "migration must not drop traffic");
        assert_eq!(busy.failed, 0);
        assert!(busy.migration.is_some());
        // post-swap the split routing makes the ring cross-shard
        assert!(busy.cross_shard_txs > 0);
        // 2 segments × 20 transfers of 1 wei around a ring of 4: every
        // balance is still accounted for somewhere
        let total: u64 = session
            .worlds()
            .flat_map(|(_, w)| {
                w.addresses()
                    .map(|a| w.balance(a).get())
                    .collect::<Vec<_>>()
            })
            .sum();
        assert_eq!(total, 4_000);
    }

    #[test]
    fn empty_rebalance_stages_nothing() {
        let (world, _, before, _) = setup();
        let mut session =
            LiveSession::new(RuntimeConfig::new(ShardCount::TWO), before.clone(), &world);
        assert_eq!(session.stage_rebalance(before), 0);
        assert!(!session.migration_pending());
        let report = session.run_segment(&[], &MigrationConfig::default());
        assert!(report.migration.is_none());
    }

    #[test]
    fn clock_is_monotonic_across_segments() {
        let (world, addrs, before, _) = setup();
        let mut session = LiveSession::new(RuntimeConfig::new(ShardCount::TWO), before, &world);
        let txs = vec![transfer(addrs[0], addrs[1], 1)];
        let first = session.run_segment(&txs, &MigrationConfig::default());
        let second = session.run_segment(&txs, &MigrationConfig::default());
        assert!(second.start_us > first.end_us);
        assert!(second.end_us > second.start_us);
    }
}
