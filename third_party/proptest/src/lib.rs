//! Offline shim for the proptest API subset the workspace's property
//! tests use: range/tuple/`Just`/`any::<bool>()` strategies, the
//! `prop_map` / `prop_flat_map` / `prop_filter` combinators,
//! `collection::vec`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Each generated test runs its body over `cases` deterministic seeded
//! samples (no shrinking); failures report the ordinary panic message of
//! the underlying assertion.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`with_cases` is the only knob the shim keeps).
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving strategy sampling.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds the RNG for one test case; `name` isolates tests from each
    /// other so adding a test never reshuffles its neighbours' inputs.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }
}

/// A reusable generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects samples failing `pred`, resampling (up to an internal cap).
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        reason: R,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "filter `{}` rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T> Any<T> {
    /// Const constructor (used by the `num::*::ANY` constants).
    pub const fn new() -> Self {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

pub mod num {
    //! Per-type full-domain strategies (`proptest::num::u64::ANY`).

    macro_rules! num_mod {
        ($($m:ident: $t:ty),*) => {$(
            pub mod $m {
                #![allow(missing_docs)]
                /// Full-domain strategy for the type.
                pub const ANY: crate::Any<$t> = crate::Any::new();
            }
        )*};
    }

    num_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize);
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec()`](fn@vec): a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// The equivalent half-open range.
        fn into_size_range(self) -> core::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self
        }
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports a property test needs.

    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Shim for proptest's soft assertion: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Shim for proptest's soft equality assertion: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares seeded-random property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($config).cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = 256u32; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cases = $cases:expr; $(
        #[test]
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cases: u32 = $cases;
            for case in 0..cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case("shim", 0);
        let s = (1u64..10, 5u32..=6, 0usize..3);
        for _ in 0..200 {
            let (a, b, c) = crate::Strategy::sample(&s, &mut rng);
            assert!((1..10).contains(&a));
            assert!((5..=6).contains(&b));
            assert!(c < 3);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::for_case("shim2", 1);
        let s = (2u32..=5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n, 1..4)))
            .prop_filter("nonempty", |(_, v)| !v.is_empty())
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..100 {
            let (n, len) = crate::Strategy::sample(&s, &mut rng);
            assert!((2..=5).contains(&n));
            assert!((1..4).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }

        #[test]
        fn tuple_pattern_binding((a, b) in (0u32..4, 0u32..4)) {
            prop_assert!(a < 4 && b < 4);
        }
    }
}
