/root/repo/target/debug/deps/blockpart_core-15c009c83e380a88.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libblockpart_core-15c009c83e380a88.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libblockpart_core-15c009c83e380a88.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
