//! Trace a full experiment: run two strategies with instrumentation on,
//! export the Chrome/Perfetto trace and the flat metrics dump, and show
//! that the replay's virtual-clock slice is deterministic.
//!
//! ```sh
//! cargo run --release --example trace_experiment
//! # then load the printed .json path at https://ui.perfetto.dev
//! ```

use blockpart::core::{Experiment, StrategyRegistry};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::obs::perfetto;
use blockpart::types::ShardCount;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(7)).generate();
    println!(
        "generated {} transactions / {} interactions",
        chain.txs.len(),
        chain.log.len()
    );

    // -- run the pipeline with tracing on ------------------------------------
    let registry = StrategyRegistry::with_builtins();
    let run = || {
        Experiment::over_chain(&chain)
            .named_strategies(&registry, "hash,metis")
            .expect("built-in strategies resolve")
            .shard_counts(vec![ShardCount::TWO])
            .replay(true)
            .trace(true)
            .run()
    };
    let report = run();
    let trace = report.trace.as_ref().expect("tracing was enabled");
    println!(
        "collected {} records, {} counters",
        trace.records().len(),
        trace.metrics().counters().count()
    );

    // -- export: Perfetto JSON + flat metrics --------------------------------
    let doc = report.trace_perfetto().expect("tracing was enabled");
    let events = perfetto::validate(&doc)?;
    let path = std::env::temp_dir().join("blockpart_experiment_trace.json");
    std::fs::write(&path, doc.render())?;
    println!(
        "wrote {} ({events} trace events, validated)",
        path.display()
    );

    let metrics = report.metrics_text().expect("tracing was enabled");
    println!("\nmetrics (first lines):");
    for line in metrics.lines().take(6) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", metrics.lines().count());

    // -- determinism: the virtual-clock slice repeats byte-for-byte ----------
    // Wall-clock spans differ between runs; the replay's virtual-clock
    // records (the discrete-event engine's timeline) must not.
    let second = run();
    let a = perfetto::to_perfetto(&trace.virtual_only()).render();
    let b =
        perfetto::to_perfetto(&second.trace.expect("tracing was enabled").virtual_only()).render();
    assert_eq!(a, b, "virtual-clock trace must be deterministic");
    println!("\nvirtual-clock slice is byte-identical across runs");
    Ok(())
}
