//! A hand-built ICO dApp on the EVM-lite substrate: deploy a token and a
//! crowdsale, drive contributions through the VM, and inspect how the
//! resulting interaction graph responds to sharding.
//!
//! This mirrors the paper's motivation: a single hot dApp creates a hub
//! subgraph that a good partitioner keeps on one shard.
//!
//! ```sh
//! cargo run --release --example ico_dapp
//! ```

use blockpart::ethereum::{Chain, ContractTemplate, Transaction, TxPayload};
use blockpart::graph::InteractionLog;
use blockpart::partition::{
    CutMetrics, HashPartitioner, MultilevelPartitioner, PartitionRequest, Partitioner,
};
use blockpart::types::{Duration, Gas, ShardCount, Timestamp, Wei};

fn main() {
    let mut chain = Chain::new(0xda99);
    let mut log = InteractionLog::new();

    // -- deploy the dApp ----------------------------------------------------
    let founder = chain.world_mut().new_user(Wei::new(1_000_000_000));
    let treasury = chain.world_mut().new_user(Wei::ZERO);
    let token =
        chain
            .world_mut()
            .create_contract(ContractTemplate::Token, founder, founder.index());
    let sale = chain
        .world_mut()
        .create_contract(ContractTemplate::Crowdsale, founder, 0);
    chain.world_mut().storage_store(sale, 0, treasury.index());
    chain.world_mut().storage_store(sale, 1, token.index());

    // -- 200 contributors + background transfer noise -----------------------
    let contributors: Vec<_> = (0..200)
        .map(|_| chain.world_mut().new_user(Wei::new(10_000_000)))
        .collect();
    let noise: Vec<_> = (0..200)
        .map(|_| chain.world_mut().new_user(Wei::new(10_000_000)))
        .collect();

    let mut t = Timestamp::EPOCH;
    for round in 0..50u64 {
        let mut txs = Vec::new();
        for (i, &c) in contributors.iter().enumerate() {
            if (i as u64 + round).is_multiple_of(5) {
                txs.push(Transaction {
                    from: c,
                    to: sale,
                    value: Wei::new(1_000 + round * 7),
                    gas_limit: Gas::new(400_000),
                    payload: TxPayload::Call { arg: 0 },
                });
            }
        }
        // unrelated pairwise transfers among the noise population
        for pair in noise.chunks(2) {
            if let [a, b] = pair {
                txs.push(Transaction {
                    from: *a,
                    to: *b,
                    value: Wei::new(1),
                    gas_limit: Gas::new(30_000),
                    payload: TxPayload::Transfer,
                });
            }
        }
        chain.apply_block(t, txs, &mut log);
        t += Duration::hours(1);
    }

    println!(
        "dApp chain: {} interactions, sale raised {} (slot 2 of the crowdsale)\n",
        log.len(),
        chain.world().storage_load(sale, 2),
    );

    // -- shard the graph ------------------------------------------------------
    let graph = log.graph_until(t);
    let csr = graph.to_csr();
    let ids: Vec<u64> = graph.nodes().map(|n| n.address.stable_hash()).collect();
    let k = ShardCount::TWO;

    let req = PartitionRequest::new(&csr, k).with_stable_ids(&ids);
    let hash_part = HashPartitioner::new().partition(&req);
    let metis_part = MultilevelPartitioner::default().partition(&req);

    let hm = CutMetrics::compute(&csr, &hash_part);
    let mm = CutMetrics::compute(&csr, &metis_part);
    println!("hash : {hm}");
    println!("metis: {mm}\n");

    // the dApp triangle (sale -> treasury, sale -> token) should be
    // co-located by the multilevel partitioner
    let node = |a| graph.node_of(a).expect("in graph").index();
    let same = |p: &blockpart::partition::Partition| {
        p.shard_of(node(sale)) == p.shard_of(node(token))
            && p.shard_of(node(sale)) == p.shard_of(node(treasury))
    };
    println!("dApp co-located under hash : {}", same(&hash_part));
    println!("dApp co-located under metis: {}", same(&metis_part));
    assert!(
        mm.dynamic_edge_cut <= hm.dynamic_edge_cut,
        "multilevel should not cut more interaction weight than hashing"
    );
}
