//! The sharded execution runtime: what a cut edge actually *costs*.
//!
//! The partitioning study measures partition quality statically (edge
//! cut, balance, moves). This crate executes a generated chain *on* a
//! partition: each shard owns a slice of the Ethereum world state and a
//! serial execution unit; single-shard transactions run locally through
//! the EVM-lite VM, while cross-shard transactions go through a
//! two-phase-commit coordinator — lock the footprint on every
//! participant, ship state to the coordinator, execute, ship write-sets
//! back — over a configurable-latency network. The output is a
//! [`RuntimeReport`]: cross-shard ratio, 2PC abort rate, p50/p99 commit
//! latency and delivered throughput.
//!
//! The engine is a deterministic discrete-event simulation. Events live
//! in one virtual-time queue ([`clock::EventQueue`]); every batch of
//! same-instant events is split by shard and executed by per-shard
//! workers in parallel threads. Workers touch only their own state and
//! communicate exclusively through returned events, so the result is
//! bit-identical across runs and thread schedules.
//!
//! # Examples
//!
//! ```
//! use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
//! use blockpart_runtime::{Assignment, RuntimeConfig, ShardedRuntime};
//! use blockpart_types::ShardCount;
//!
//! let chain = ChainGenerator::new(GeneratorConfig::test_scale(1)).generate();
//! let k = ShardCount::new(1).unwrap();
//! let runtime = ShardedRuntime::new(RuntimeConfig::new(k), Assignment::hashed(k));
//! let report = runtime.run(chain.chain.world(), &chain.txs);
//! // one shard: everything commits locally, no coordination at all
//! assert_eq!(report.committed as usize, chain.txs.len());
//! assert_eq!(report.prepare_rounds, 0);
//! assert_eq!(report.cross_shard_txs, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod coordinator;
pub mod event;
mod live;
pub mod locks;
pub mod net;
pub mod report;
mod shard_worker;

use std::collections::{BTreeMap, HashMap};

use blockpart_ethereum::{ExecutedTx, World};
use blockpart_obs::Trace;
use blockpart_shard::AssignmentDelta;
use blockpart_types::{Address, ShardCount, ShardId};

use crate::clock::{EventQueue, Micros};
use crate::event::{Event, TxId};
use crate::net::NetworkModel;
use crate::shard_worker::{mix64, Ctx, ShardWorker, TxKind, TxRecord};

pub use crate::live::{LiveSession, MigrationConfig, MigrationStats, SegmentReport};
pub use crate::report::{RuntimeReport, ShardReport};

/// Address-lane stride keeping per-shard allocators disjoint.
const ADDRESS_LANE: u64 = 1 << 40;

/// Minimum same-instant events before a batch is worth worker threads.
const PARALLEL_BATCH_THRESHOLD: usize = 32;

/// Tuning knobs of the execution runtime. All times are virtual
/// microseconds.
///
/// # Examples
///
/// ```
/// use blockpart_runtime::RuntimeConfig;
/// use blockpart_types::ShardCount;
///
/// let cfg = RuntimeConfig::new(ShardCount::TWO).with_net_latency_us(500);
/// assert_eq!(cfg.net_latency_us, 500);
/// ```
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of shards.
    pub k: ShardCount,
    /// One-way inter-shard network latency.
    pub net_latency_us: u64,
    /// Execution speed: gas units retired per microsecond.
    pub gas_per_us: u64,
    /// Floor on any execution's duration.
    pub min_exec_us: u64,
    /// Fixed cost of handling a prepare (lock + vote).
    pub prepare_cpu_us: u64,
    /// Offered load: gap between consecutive transaction arrivals.
    pub inter_arrival_us: u64,
    /// Base backoff after an aborted 2PC round (grows linearly with the
    /// attempt, plus deterministic per-transaction jitter).
    pub retry_backoff_us: u64,
    /// Prepare attempts before a transaction is dropped as failed.
    pub max_attempts: u32,
    /// Entropy seed for the re-executions' `RAND` opcode.
    pub seed: u64,
    /// Minimum same-instant events before a batch is split across
    /// worker threads. Purely a wall-clock knob: results and traces are
    /// identical at any value (0 forces always-parallel, `usize::MAX`
    /// always-serial — the trace-determinism tests exploit that).
    pub parallel_batch_threshold: usize,
    /// When set, every 2PC prepare serializes its exported state through
    /// a per-shard on-disk [`blockpart_storage::AccountStateStore`] in
    /// this directory and ships the re-read value — migration batches
    /// serialize from disk instead of a resident [`World`]. The encoding
    /// is lossless, so reports and traces are byte-identical with or
    /// without a spool.
    pub state_spool_dir: Option<std::path::PathBuf>,
    /// The intra-shard execution engine. The default is the serial
    /// engine, which reproduces the historical one-at-a-time path
    /// exactly. A speculating engine (see
    /// [`blockpart_ethereum::ParallelEngine`]) pre-executes queued local
    /// transactions in parallel host threads; commits stay in
    /// deterministic virtual order, so every pre-existing report field
    /// and trace byte is identical — only the additive `exec_*`
    /// speculation counters (and wall-clock time) change.
    pub exec: blockpart_ethereum::ExecHandle,
}

impl RuntimeConfig {
    /// Defaults: 1 ms inter-shard latency (datacenter sharding), 100
    /// gas/µs, 2 000 offered tx/s, 5 ms retry backoff, 64 attempts.
    pub fn new(k: ShardCount) -> Self {
        RuntimeConfig {
            k,
            net_latency_us: 1_000,
            gas_per_us: 100,
            min_exec_us: 50,
            prepare_cpu_us: 20,
            inter_arrival_us: 500,
            retry_backoff_us: 5_000,
            max_attempts: 64,
            seed: 0,
            parallel_batch_threshold: PARALLEL_BATCH_THRESHOLD,
            state_spool_dir: None,
            exec: blockpart_ethereum::ExecHandle::default(),
        }
    }

    /// Overrides the intra-shard execution engine (see
    /// [`RuntimeConfig::exec`]).
    pub fn with_exec(mut self, exec: blockpart_ethereum::ExecHandle) -> Self {
        self.exec = exec;
        self
    }

    /// Routes 2PC state shipping through a per-shard on-disk spool in
    /// `dir` (see [`RuntimeConfig::state_spool_dir`]). The directory is
    /// created on demand; spool I/O errors panic (the runtime itself is
    /// pure compute and has no error channel).
    pub fn with_state_spool_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.state_spool_dir = Some(dir.into());
        self
    }

    /// Overrides the parallel batch threshold.
    pub fn with_parallel_batch_threshold(mut self, threshold: usize) -> Self {
        self.parallel_batch_threshold = threshold;
        self
    }

    /// Overrides the one-way network latency.
    pub fn with_net_latency_us(mut self, latency: u64) -> Self {
        self.net_latency_us = latency;
        self
    }

    /// Overrides the offered load (arrival gap).
    pub fn with_inter_arrival_us(mut self, gap: u64) -> Self {
        self.inter_arrival_us = gap;
        self
    }

    /// Overrides the retry backoff base.
    pub fn with_retry_backoff_us(mut self, backoff: u64) -> Self {
        self.retry_backoff_us = backoff;
        self
    }

    /// Overrides the prepare-attempt cap.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the entropy seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A vertex→shard assignment, usually snapshotted from the partitioning
/// simulator ([`blockpart_shard::ShardedState::assignment_map`]).
/// Addresses outside the map (state never seen by the partitioner) fall
/// back to deterministic hashing.
///
/// # Examples
///
/// ```
/// use blockpart_runtime::Assignment;
/// use blockpart_types::{Address, ShardCount, ShardId};
///
/// let mut map = std::collections::HashMap::new();
/// map.insert(Address::from_index(7), ShardId::new(1));
/// let a = Assignment::from_map(map, ShardCount::TWO);
/// assert_eq!(a.shard_of(Address::from_index(7)), ShardId::new(1));
/// assert!(a.k().contains(a.shard_of(Address::from_index(99))));
/// ```
#[derive(Clone, Debug)]
pub struct Assignment {
    map: HashMap<Address, ShardId>,
    k: ShardCount,
}

impl Assignment {
    /// Wraps an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any mapped shard is out of range for `k`.
    pub fn from_map(map: HashMap<Address, ShardId>, k: ShardCount) -> Self {
        assert!(
            map.values().all(|&s| k.contains(s)),
            "assignment references a shard >= k"
        );
        Assignment { map, k }
    }

    /// A pure hash assignment (every address via the fallback).
    pub fn hashed(k: ShardCount) -> Self {
        Assignment {
            map: HashMap::new(),
            k,
        }
    }

    /// The shard owning `address`.
    pub fn shard_of(&self, address: Address) -> ShardId {
        self.map.get(&address).copied().unwrap_or_else(|| {
            ShardId::new((mix64(address.stable_hash()) % u64::from(self.k.get())) as u16)
        })
    }

    /// The shard count.
    pub fn k(&self) -> ShardCount {
        self.k
    }

    /// Number of explicitly mapped addresses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when every address uses the hash fallback.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The explicitly mapped addresses and their shards.
    pub fn mapped(&self) -> impl Iterator<Item = (Address, ShardId)> + '_ {
        self.map.iter().map(|(&a, &s)| (a, s))
    }

    /// The delta from `self` to `next`: every address (mapped by either
    /// side) whose owning shard changes, including hash-fallback
    /// transitions. This is the single source of truth for "vertices
    /// moved" — the live migration service ships exactly these batches,
    /// and the offline simulator counts the same quantity.
    ///
    /// # Panics
    ///
    /// Panics if the two assignments' shard counts differ.
    pub fn diff(&self, next: &Assignment) -> AssignmentDelta {
        assert_eq!(self.k, next.k(), "assignments span different shard counts");
        let union = self.map.keys().chain(next.map.keys()).copied();
        AssignmentDelta::between(union, |a| self.shard_of(a), |a| next.shard_of(a))
    }
}

/// How much the engine collects while replaying: nothing, metrics only
/// (the cheap always-on mode), or the full per-event record stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Detail {
    Off,
    Metrics,
    Events,
}

/// The sharded execution engine. See the [crate docs](crate) for the
/// model.
#[derive(Debug)]
pub struct ShardedRuntime {
    cfg: RuntimeConfig,
    assignment: Assignment,
}

impl ShardedRuntime {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's and assignment's shard counts
    /// disagree.
    pub fn new(cfg: RuntimeConfig, assignment: Assignment) -> Self {
        assert_eq!(cfg.k, assignment.k(), "shard counts disagree");
        ShardedRuntime { cfg, assignment }
    }

    /// Replays `txs` over shard slices of `world` and reports the
    /// execution-level cost of the assignment.
    ///
    /// `world` is the canonical end-of-history state: every shard's slice
    /// is materialized from it, so re-executions run over realistic
    /// account and contract state. The `touched` footprints recorded at
    /// canonical execution act as declared access lists.
    pub fn run(&self, world: &World, txs: &[ExecutedTx]) -> RuntimeReport {
        self.run_inner(world, txs, Detail::Off).0
    }

    /// Like [`run`](Self::run) with metrics-only instrumentation: the
    /// per-shard counters and latency histograms accumulate (scoped
    /// `shard-N/commits`, `shard-N/aborts/<cause>`,
    /// `shard-N/commit_latency_us`, ...) while the O(events) record
    /// stream of [`run_traced`](Self::run_traced) is skipped. This is
    /// the always-on observability mode: its overhead versus
    /// [`run`](Self::run) is what CI gates at ≤ 5%. The returned trace
    /// carries the metrics registry and no records.
    pub fn run_metered(&self, world: &World, txs: &[ExecutedTx]) -> (RuntimeReport, Trace) {
        self.run_inner(world, txs, Detail::Metrics)
    }

    /// Like [`run`](Self::run), additionally collecting a virtual-clock
    /// trace: 2PC lifecycle events (prepare/lock/vote/commit/abort, with
    /// tx id, shards touched, retry count and abort cause), per-shard
    /// execute/idle spans, and per-shard metrics.
    ///
    /// Every timestamp is simulated time, so for a given config, seed
    /// and workload the trace is **byte-identical** across worker
    /// counts, thread schedules and machines — traces diff cleanly.
    pub fn run_traced(&self, world: &World, txs: &[ExecutedTx]) -> (RuntimeReport, Trace) {
        self.run_inner(world, txs, Detail::Events)
    }

    fn run_inner(
        &self,
        world: &World,
        txs: &[ExecutedTx],
        detail: Detail,
    ) -> (RuntimeReport, Trace) {
        let records = self.build_records(txs);
        let mut workers = build_workers(&self.cfg, &self.assignment, world);
        if detail != Detail::Off {
            for worker in &mut workers {
                let mut obs = match detail {
                    Detail::Events => Trace::new_virtual(),
                    _ => Trace::metrics_only(),
                };
                obs.set_lane(0, u32::from(worker.id.as_u16()));
                obs.set_metric_prefix(format!("{}/", worker.id));
                worker.obs = obs;
            }
        }
        let ctx = Ctx {
            cfg: &self.cfg,
            txs: &records,
            net: NetworkModel {
                latency_us: self.cfg.net_latency_us,
            },
        };

        let mut queue = EventQueue::new();
        for (i, rec) in records.iter().enumerate() {
            queue.push(rec.arrival_us, rec.home, Event::Arrival(TxId(i as u32)));
        }
        drive(&mut workers, &mut queue, &ctx);

        // merge worker trace buffers in shard order, then time-sort:
        // virtual timestamps make the result independent of how many
        // threads produced them (ties resolve to shard order)
        let mut trace = match detail {
            Detail::Events => Trace::new_virtual(),
            Detail::Metrics => Trace::metrics_only(),
            Detail::Off => Trace::disabled(),
        };
        if detail != Detail::Off {
            trace.name_process(0, "replay (virtual µs)");
            for worker in &mut workers {
                trace.name_thread(0, u32::from(worker.id.as_u16()), worker.id.to_string());
                trace.merge(std::mem::replace(&mut worker.obs, Trace::disabled()));
            }
            trace.sort_by_time();
        }

        (self.assemble_report(&records, workers), trace)
    }

    /// Precomputes arrival times, homes and per-shard footprints.
    fn build_records(&self, txs: &[ExecutedTx]) -> Vec<TxRecord> {
        txs.iter()
            .enumerate()
            .map(|(i, e)| {
                payload_record(
                    &self.cfg,
                    &self.assignment,
                    e,
                    i as u64,
                    i as u64 * self.cfg.inter_arrival_us,
                )
            })
            .collect()
    }

    fn assemble_report(&self, records: &[TxRecord], workers: Vec<ShardWorker>) -> RuntimeReport {
        let mut committed = 0u64;
        let mut failed = 0u64;
        let mut prepare_rounds = 0u64;
        let mut aborted_rounds = 0u64;
        let mut local_conflicts = 0u64;
        let mut stray_touches = 0u64;
        let mut exec_speculated = 0u64;
        let mut exec_conflicts = 0u64;
        let mut exec_re_executions = 0u64;
        let mut abort_causes: BTreeMap<String, u64> = BTreeMap::new();
        let mut latencies: Vec<u64> = Vec::new();
        let mut makespan = 0u64;
        for w in &workers {
            committed += w.stats.committed;
            failed += w.stats.failed;
            prepare_rounds += w.stats.prepare_rounds;
            aborted_rounds += w.stats.aborted_rounds;
            local_conflicts += w.stats.local_conflicts;
            stray_touches += w.stats.stray_touches;
            exec_speculated += w.stats.exec_speculated;
            exec_conflicts += w.stats.exec_conflicts;
            exec_re_executions += w.stats.exec_re_executions;
            for (&cause, &n) in &w.stats.abort_causes {
                *abort_causes.entry(cause.to_string()).or_insert(0) += n;
            }
            latencies.extend_from_slice(&w.stats.latencies_us);
            makespan = makespan.max(w.stats.last_commit_us);
        }
        let (p50, p99) = RuntimeReport::latency_percentiles(&mut latencies);
        let cross_shard_txs = records.iter().filter(|r| r.is_cross()).count();
        let total = records.len();
        let per_shard: Vec<ShardReport> = workers
            .iter()
            .map(|w| ShardReport {
                shard: w.id,
                committed: w.stats.committed,
                cross_committed: w.stats.cross_committed,
                busy_us: w.stats.busy_us,
                utilization: if makespan == 0 {
                    0.0
                } else {
                    w.stats.busy_us as f64 / makespan as f64
                },
                aborted_rounds: w.stats.aborted_rounds,
                exec_speculated: w.stats.exec_speculated,
                exec_conflicts: w.stats.exec_conflicts,
                exec_re_executions: w.stats.exec_re_executions,
            })
            .collect();
        RuntimeReport {
            k: self.cfg.k,
            total_txs: total,
            committed,
            failed,
            cross_shard_txs,
            cross_shard_ratio: if total == 0 {
                0.0
            } else {
                cross_shard_txs as f64 / total as f64
            },
            prepare_rounds,
            aborted_rounds,
            abort_causes,
            abort_rate: if prepare_rounds == 0 {
                0.0
            } else {
                aborted_rounds as f64 / prepare_rounds as f64
            },
            local_conflicts,
            stray_touches,
            p50_commit_latency_us: p50,
            p99_commit_latency_us: p99,
            makespan_us: makespan,
            throughput_tps: if makespan == 0 {
                0.0
            } else {
                committed as f64 * 1e6 / makespan as f64
            },
            exec_speculated,
            exec_conflicts,
            exec_re_executions,
            per_shard,
        }
    }
}

/// Slices the canonical world into per-shard worlds with disjoint
/// address-allocation lanes.
fn build_workers(cfg: &RuntimeConfig, assignment: &Assignment, world: &World) -> Vec<ShardWorker> {
    let base = world.address_floor();
    if let Some(dir) = &cfg.state_spool_dir {
        std::fs::create_dir_all(dir).expect("state spool directory");
    }
    let mut workers: Vec<ShardWorker> = cfg
        .k
        .iter()
        .map(|s| {
            let mut slice = World::new();
            slice.raise_address_floor(base + (s.as_usize() as u64 + 1) * ADDRESS_LANE);
            let mut worker = ShardWorker::new(s, slice);
            if let Some(dir) = &cfg.state_spool_dir {
                let path = dir.join(format!("spool-shard-{:03}.bin", s.as_usize()));
                worker.spool =
                    Some(blockpart_storage::AccountStateStore::create(path).expect("state spool"));
            }
            worker
        })
        .collect();
    for a in world.addresses() {
        let shard = assignment.shard_of(a);
        if let Some(state) = world.export_state(a) {
            workers[shard.as_usize()].world.install_state(a, state);
        }
    }
    workers
}

/// Builds the replay record of one payload transaction: footprint split
/// by shard under `assignment`, entropy drawn from the global index so
/// a live session's segments reproduce a single continuous stream.
fn payload_record(
    cfg: &RuntimeConfig,
    assignment: &Assignment,
    e: &ExecutedTx,
    global_index: u64,
    arrival_us: Micros,
) -> TxRecord {
    let mut parts: BTreeMap<ShardId, Vec<Address>> = BTreeMap::new();
    for &a in &e.touched {
        parts.entry(assignment.shard_of(a)).or_default().push(a);
    }
    TxRecord {
        arrival_us,
        block_time: e.time,
        tx: e.tx,
        home: assignment.shard_of(e.tx.from),
        parts: parts.into_iter().collect(),
        entropy: mix64(cfg.seed ^ global_index),
        kind: TxKind::Payload,
    }
}

/// Runs the discrete-event loop until the queue drains, dispatching each
/// same-instant batch to the per-shard workers (serially or on one
/// thread per shard, gated by `parallel_batch_threshold`) and merging
/// the emitted events back in shard order. Returns the virtual time of
/// the last processed batch. Shared by one-shot runs and live sessions.
fn drive(workers: &mut [ShardWorker], queue: &mut EventQueue, ctx: &Ctx<'_>) -> Micros {
    let k = workers.len();
    let mut last_now = 0;
    while let Some((now, batch)) = queue.pop_batch() {
        last_now = now;
        let mut buckets: Vec<Vec<Event>> = vec![Vec::new(); k];
        let batch_len = batch.len();
        for (shard, event) in batch {
            buckets[shard.as_usize()].push(event);
        }
        let active = buckets.iter().filter(|b| !b.is_empty()).count();
        let mut outs: Vec<Vec<shard_worker::Emit>> = Vec::new();
        outs.resize_with(k, Vec::new);
        // threads only pay off when a batch carries real work: typical
        // message batches are 2-3 events of microsecond bookkeeping,
        // which thread spawn/join would dwarf
        if active <= 1 || batch_len < ctx.cfg.parallel_batch_threshold {
            for (slot, (worker, events)) in outs.iter_mut().zip(workers.iter_mut().zip(buckets)) {
                if !events.is_empty() {
                    *slot = worker.handle_batch(now, events, ctx);
                }
            }
        } else {
            crossbeam::thread::scope(|scope| {
                for (slot, (worker, events)) in outs.iter_mut().zip(workers.iter_mut().zip(buckets))
                {
                    if events.is_empty() {
                        continue;
                    }
                    scope.spawn(move |_| {
                        *slot = worker.handle_batch(now, events, ctx);
                    });
                }
            })
            .expect("shard worker panicked");
        }
        // merge in shard order: deterministic sequence numbering
        for emits in outs {
            for e in emits {
                debug_assert!(e.at >= now, "event scheduled in the past");
                queue.push(e.at, e.shard, e.event);
            }
        }
    }
    last_now
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_ethereum::{Receipt, Transaction, TxPayload, TxStatus};
    use blockpart_types::{Gas, Timestamp, Wei};

    /// Two users with explicit shard placement and one transfer between
    /// them.
    fn micro_setup(same_shard: bool) -> (World, Vec<ExecutedTx>, Assignment) {
        let mut world = World::new();
        let alice = world.new_user(Wei::new(1_000));
        let bob = world.new_user(Wei::new(10));
        let tx = Transaction {
            from: alice,
            to: bob,
            value: Wei::new(5),
            gas_limit: Gas::new(30_000),
            payload: TxPayload::Transfer,
        };
        let receipt = Receipt {
            status: TxStatus::Success,
            gas_used: Gas::new(21_000),
            calls: Vec::new(),
            created: Vec::new(),
        };
        let exec = ExecutedTx::new(Timestamp::from_secs(1), tx, &receipt);
        let mut map = HashMap::new();
        map.insert(alice, ShardId::new(0));
        map.insert(bob, ShardId::new(if same_shard { 0 } else { 1 }));
        (
            world,
            vec![exec],
            Assignment::from_map(map, ShardCount::TWO),
        )
    }

    #[test]
    fn spooled_state_shipping_matches_resident_run() {
        use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
        // a generated workload so spooled prepares cover both account
        // and contract records (storage slots, creators, templates)
        let synthetic = ChainGenerator::new(GeneratorConfig::test_scale(11)).generate();
        let txs: Vec<ExecutedTx> = synthetic.txs.iter().take(300).cloned().collect();
        let cfg = RuntimeConfig::new(ShardCount::TWO);
        let resident = ShardedRuntime::new(cfg.clone(), Assignment::hashed(ShardCount::TWO))
            .run(synthetic.chain.world(), &txs);
        let dir = std::env::temp_dir().join(format!("bp-spool-test-{}", std::process::id()));
        let spooled = ShardedRuntime::new(
            cfg.with_state_spool_dir(&dir),
            Assignment::hashed(ShardCount::TWO),
        )
        .run(synthetic.chain.world(), &txs);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(resident, spooled, "spooled run diverged from resident run");
    }

    #[test]
    fn single_shard_transfer_commits_without_coordination() {
        let (world, txs, assignment) = micro_setup(true);
        let report =
            ShardedRuntime::new(RuntimeConfig::new(ShardCount::TWO), assignment).run(&world, &txs);
        assert_eq!(report.committed, 1);
        assert_eq!(report.prepare_rounds, 0);
        assert_eq!(report.cross_shard_txs, 0);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn cross_shard_transfer_runs_two_phase_commit() {
        let (world, txs, assignment) = micro_setup(false);
        let cfg = RuntimeConfig::new(ShardCount::TWO).with_net_latency_us(1_000);
        let report = ShardedRuntime::new(cfg, assignment).run(&world, &txs);
        assert_eq!(report.committed, 1);
        assert_eq!(report.cross_shard_txs, 1);
        assert_eq!(report.prepare_rounds, 1);
        assert_eq!(report.aborted_rounds, 0);
        // latency covers at least two round trips (prepare+vote,
        // commit+ack) plus execution
        assert!(
            report.p50_commit_latency_us >= 4_000,
            "latency {}",
            report.p50_commit_latency_us
        );
    }

    #[test]
    fn cross_shard_commit_moves_value_between_slices() {
        let (world, txs, assignment) = micro_setup(false);
        let alice = txs[0].tx.from;
        let bob = txs[0].tx.to;
        let cfg = RuntimeConfig::new(ShardCount::TWO);
        let runtime = ShardedRuntime::new(cfg, assignment);
        // shard slices are private to the run; what must hold outside is
        // that the canonical world is never mutated by a replay
        let report = runtime.run(&world, &txs);
        assert_eq!(report.committed, 1);
        assert_eq!(world.balance(alice), Wei::new(1_000));
        assert_eq!(world.balance(bob), Wei::new(10));
    }

    #[test]
    fn conflicting_cross_shard_txs_abort_and_retry() {
        // two transactions fighting over the same two addresses, arriving
        // simultaneously from different home shards
        let mut world = World::new();
        let a = world.new_user(Wei::new(100));
        let b = world.new_user(Wei::new(100));
        let mk = |from, to| {
            let tx = Transaction {
                from,
                to,
                value: Wei::new(1),
                gas_limit: Gas::new(30_000),
                payload: TxPayload::Transfer,
            };
            let receipt = Receipt {
                status: TxStatus::Success,
                gas_used: Gas::new(21_000),
                calls: Vec::new(),
                created: Vec::new(),
            };
            ExecutedTx::new(Timestamp::from_secs(1), tx, &receipt)
        };
        let txs = vec![mk(a, b), mk(b, a)];
        let mut map = HashMap::new();
        map.insert(a, ShardId::new(0));
        map.insert(b, ShardId::new(1));
        let cfg = RuntimeConfig::new(ShardCount::TWO)
            .with_inter_arrival_us(0)
            .with_net_latency_us(1_000);
        let report =
            ShardedRuntime::new(cfg, Assignment::from_map(map, ShardCount::TWO)).run(&world, &txs);
        // both must eventually commit; at least one round aborted on the
        // lock conflict
        assert_eq!(report.committed, 2);
        assert!(report.aborted_rounds >= 1, "no abort: {report:?}");
        assert!(report.prepare_rounds > 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let (world, txs, assignment) = micro_setup(false);
        let run = || {
            ShardedRuntime::new(RuntimeConfig::new(ShardCount::TWO), assignment.clone())
                .run(&world, &txs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_run_is_empty_report() {
        let report = ShardedRuntime::new(
            RuntimeConfig::new(ShardCount::TWO),
            Assignment::hashed(ShardCount::TWO),
        )
        .run(&World::new(), &[]);
        assert_eq!(report.total_txs, 0);
        assert_eq!(report.committed, 0);
        assert_eq!(report.throughput_tps, 0.0);
    }
}
