//! A from-scratch multilevel k-way graph partitioner in the style of METIS
//! (Karypis & Kumar, SIAM J. Sci. Comput. 1998), which the paper uses as a
//! black box for its METIS, R-METIS and TR-METIS methods.
//!
//! The scheme has three phases:
//!
//! 1. **Coarsening** ([`matching`], [`coarsen`]) — repeatedly collapse a
//!    matching (heavy-edge by default) until the graph is small;
//! 2. **Initial partitioning** ([`initial`]) — recursive bisection on the
//!    coarsest graph using greedy graph growing plus
//!    Fiduccia–Mattheyses-style refinement;
//! 3. **Uncoarsening** ([`refine`]) — project the partition back level by
//!    level, running greedy k-way boundary refinement at each level.

pub mod coarsen;
pub mod initial;
pub mod matching;
pub mod refine;

use blockpart_graph::Csr;
use blockpart_obs::{Collector, Noop, Record};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::partition::Partition;
use crate::traits::{PartitionRequest, Partitioner};

pub use matching::MatchingScheme;

/// Which vertex weights drive the partitioner's balance constraint.
///
/// The paper feeds METIS edge weights (to avoid cutting hot edges) but
/// balances on vertex *counts* — which is exactly why METIS shows dynamic
/// imbalance near 2 after the 2016 dummy-account attack. `Activity`
/// balances on the activity weights instead (used in ablations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VertexWeighting {
    /// Every vertex weighs 1 (the paper's METIS configuration).
    #[default]
    Unit,
    /// Use the CSR's activity weights.
    Activity,
}

/// Tuning parameters for [`MultilevelPartitioner`].
///
/// # Examples
///
/// ```
/// use blockpart_partition::{MultilevelConfig, VertexWeighting};
///
/// let cfg = MultilevelConfig {
///     imbalance: 1.03,
///     weighting: VertexWeighting::Activity,
///     ..MultilevelConfig::default()
/// };
/// assert!(cfg.imbalance < 1.05);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultilevelConfig {
    /// Stop coarsening once the graph has at most
    /// `max(coarsen_to, 20 · k)` vertices.
    pub coarsen_to: usize,
    /// Allowed imbalance factor (`1.05` = shards may exceed the ideal
    /// weight by 5%).
    pub imbalance: f64,
    /// Independent greedy-graph-growing trials per bisection.
    pub init_trials: usize,
    /// Maximum k-way refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Matching scheme used during coarsening.
    pub matching: MatchingScheme,
    /// Vertex weights used for the balance constraint.
    pub weighting: VertexWeighting,
    /// RNG seed (matchings, growing seeds and visit orders draw from it).
    pub seed: u64,
    /// Worker threads for the matching and contraction phases (`0` =
    /// automatic). Any value produces byte-identical partitions; this
    /// knob trades only wall-clock time.
    pub threads: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_to: 120,
            imbalance: 1.05,
            init_trials: 8,
            refine_passes: 8,
            matching: MatchingScheme::HeavyEdge,
            weighting: VertexWeighting::Unit,
            seed: 0x004d_4554_4953, // "METIS"
            threads: 0,
        }
    }
}

/// The multilevel k-way partitioner.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::{
///     CutMetrics, MultilevelConfig, MultilevelPartitioner, PartitionRequest, Partitioner,
/// };
/// use blockpart_types::ShardCount;
///
/// // a ring of 32 vertices: a 2-way partition should cut exactly 2 edges
/// let edges: Vec<(u32, u32, u64)> = (0..32).map(|i| (i, (i + 1) % 32, 1)).collect();
/// let csr = Csr::from_edges(32, &edges);
/// let mut ml = MultilevelPartitioner::new(MultilevelConfig::default());
/// let p = ml.partition(&PartitionRequest::new(&csr, ShardCount::TWO));
/// let m = CutMetrics::compute(&csr, &p);
/// assert!(m.cut_edges <= 4); // optimal is 2; allow slight slack
/// ```
#[derive(Clone, Debug)]
pub struct MultilevelPartitioner {
    config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelPartitioner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        MultilevelPartitioner::new(MultilevelConfig::default())
    }
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> &str {
        "metis"
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        kway(req.csr, req.k, &self.config)
    }
}

/// Runs the full multilevel k-way algorithm.
///
/// This is the library entry point behind [`MultilevelPartitioner`];
/// exposed for benchmarks that want to sweep configurations without the
/// trait indirection.
pub fn kway(csr: &Csr, k: blockpart_types::ShardCount, config: &MultilevelConfig) -> Partition {
    kway_traced(csr, k, config, &mut Noop)
}

/// [`kway`] with instrumentation: records wall-clock `detail` spans for
/// the three phases (`partition/coarsen`, `partition/initial`,
/// `partition/refine`) into `obs`. The collector never influences the
/// partition — `kway` is this with a no-op collector.
pub fn kway_traced<C: Collector>(
    csr: &Csr,
    k: blockpart_types::ShardCount,
    config: &MultilevelConfig,
    obs: &mut C,
) -> Partition {
    let n = csr.node_count();
    if n == 0 {
        return Partition::all_on_first(0, k);
    }
    if k.get() == 1 {
        return Partition::all_on_first(n, k);
    }

    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Re-weight vertices according to the balance policy.
    let base = match config.weighting {
        VertexWeighting::Unit => rebuild_with_unit_weights(csr),
        VertexWeighting::Activity => csr.clone(),
    };

    // ---- Phase 1: coarsening -------------------------------------------
    let coarsen_start = obs.now_us();
    let stop_at = config.coarsen_to.max(20 * k.as_usize());
    let mut levels: Vec<(Csr, Vec<u32>)> = Vec::new(); // (fine graph, fine->coarse map)
    let mut current = base;
    while current.node_count() > stop_at {
        let matching =
            matching::match_vertices_workers(&current, config.matching, &mut rng, config.threads);
        let (coarse, map) = coarsen::contract_workers(&current, &matching, config.threads);
        // Stop when coarsening stalls (highly connected graphs).
        if coarse.node_count() as f64 > current.node_count() as f64 * 0.95 {
            break;
        }
        levels.push((current, map));
        current = coarse;
    }
    if obs.enabled() {
        let dur = obs.now_us() - coarsen_start;
        obs.record(
            Record::span(coarsen_start, dur, "detail", "partition/coarsen")
                .with_arg("levels", levels.len())
                .with_arg("coarsest_vertices", current.node_count()),
        );
    }

    // ---- Phase 2: initial partitioning on the coarsest graph ------------
    let initial_start = obs.now_us();
    let mut part = initial::recursive_bisection(&current, k, config, &mut rng);
    let max_weights = refine::max_shard_weights(&current, k, config.imbalance);
    refine::kway_refine(
        &current,
        &mut part,
        &max_weights,
        config.refine_passes,
        &mut rng,
    );
    if obs.enabled() {
        let dur = obs.now_us() - initial_start;
        obs.record(Record::span(
            initial_start,
            dur,
            "detail",
            "partition/initial",
        ));
    }

    // ---- Phase 3: uncoarsening + refinement ------------------------------
    let refine_start = obs.now_us();
    for (fine, map) in levels.into_iter().rev() {
        let mut fine_assignment = vec![0u16; fine.node_count()];
        for (v, &c) in map.iter().enumerate() {
            fine_assignment[v] = part.as_slice()[c as usize];
        }
        part = Partition::from_assignment(fine_assignment, k)
            .expect("projected assignment stays within k");
        let max_weights = refine::max_shard_weights(&fine, k, config.imbalance);
        refine::kway_refine(
            &fine,
            &mut part,
            &max_weights,
            config.refine_passes,
            &mut rng,
        );
    }
    if obs.enabled() {
        let dur = obs.now_us() - refine_start;
        obs.record(Record::span(
            refine_start,
            dur,
            "detail",
            "partition/refine",
        ));
    }

    part
}

fn rebuild_with_unit_weights(csr: &Csr) -> Csr {
    let n = csr.node_count();
    let mut xadj = Vec::with_capacity(n + 1);
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    xadj.push(0);
    for v in 0..n {
        for (u, w) in csr.neighbors(v) {
            adjncy.push(u);
            adjwgt.push(w);
        }
        xadj.push(adjncy.len());
    }
    Csr::from_parts(xadj, adjncy, adjwgt, vec![1; n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CutMetrics;
    use blockpart_types::ShardCount;
    use rand::Rng;

    fn k(n: u16) -> ShardCount {
        ShardCount::new(n).unwrap()
    }

    /// A graph of `c` cliques of size `s`, ring-connected by light bridges.
    fn clique_ring(c: usize, s: usize) -> Csr {
        let mut edges = Vec::new();
        for ci in 0..c {
            let base = (ci * s) as u32;
            for a in 0..s as u32 {
                for b in (a + 1)..s as u32 {
                    edges.push((base + a, base + b, 10));
                }
            }
            let next = (((ci + 1) % c) * s) as u32;
            edges.push((base, next, 1));
        }
        Csr::from_edges(c * s, &edges)
    }

    #[test]
    fn bisects_clique_ring_cleanly() {
        let csr = clique_ring(8, 6); // 48 vertices
        let p = kway(&csr, k(2), &MultilevelConfig::default());
        let m = CutMetrics::compute(&csr, &p);
        // Optimal cut severs 2 bridges (weight 2 of 8 bridge weight +
        // clique weight). Require we never cut clique-internal edges.
        assert!(m.cut_weight <= 4, "cut weight {}", m.cut_weight);
        assert!(m.static_balance <= 1.10, "balance {}", m.static_balance);
    }

    #[test]
    fn kway_partitions_respect_imbalance() {
        let csr = clique_ring(16, 5); // 80 vertices
        for kk in [2u16, 4, 8] {
            let p = kway(&csr, k(kk), &MultilevelConfig::default());
            let m = CutMetrics::compute(&csr, &p);
            assert!(
                m.static_balance <= 1.35,
                "k={kk} balance {}",
                m.static_balance
            );
            assert!(
                m.dynamic_edge_cut < 0.5,
                "k={kk} cut {}",
                m.dynamic_edge_cut
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let csr = clique_ring(6, 5);
        let cfg = MultilevelConfig::default();
        assert_eq!(kway(&csr, k(4), &cfg), kway(&csr, k(4), &cfg));
        let cfg2 = MultilevelConfig { seed: 99, ..cfg };
        // different seed may give a different (but still valid) partition
        let p2 = kway(&csr, k(4), &cfg2);
        assert_eq!(p2.len(), 30);
    }

    #[test]
    fn handles_edge_cases() {
        // empty
        let empty = Csr::from_edges(0, &[]);
        assert!(kway(&empty, k(2), &MultilevelConfig::default()).is_empty());
        // k = 1
        let csr = clique_ring(2, 3);
        let p = kway(&csr, k(1), &MultilevelConfig::default());
        assert_eq!(CutMetrics::compute(&csr, &p).cut_edges, 0);
        // fewer vertices than shards
        let tiny = Csr::from_edges(2, &[(0, 1, 1)]);
        let p = kway(&tiny, k(8), &MultilevelConfig::default());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn handles_disconnected_graph() {
        let csr = Csr::from_edges(10, &[(0, 1, 1), (2, 3, 1), (4, 5, 1)]);
        let p = kway(&csr, k(2), &MultilevelConfig::default());
        assert_eq!(p.len(), 10);
        let m = CutMetrics::compute(&csr, &p);
        assert!(m.static_balance <= 1.5);
    }

    #[test]
    fn activity_weighting_balances_weighted_vertices() {
        // Two hub vertices with huge activity connected to satellite sets;
        // activity weighting must separate the hubs.
        let mut edges = Vec::new();
        for i in 2..42u32 {
            let hub = i % 2;
            edges.push((hub, i, 50));
        }
        let mut b = blockpart_graph::GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_interaction(
                blockpart_types::Address::from_index(u as u64),
                blockpart_types::Address::from_index(v as u64),
                w,
            );
        }
        let csr = b.build().to_csr();
        let cfg = MultilevelConfig {
            weighting: VertexWeighting::Activity,
            ..MultilevelConfig::default()
        };
        let p = kway(&csr, k(2), &cfg);
        let m = CutMetrics::compute(&csr, &p);
        assert!(
            m.dynamic_balance < 1.4,
            "dynamic balance {}",
            m.dynamic_balance
        );
    }

    #[test]
    fn scales_to_larger_random_graphs() {
        // power-law-ish random graph, 4000 vertices
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 4000u32;
        let mut edges = Vec::new();
        for v in 1..n {
            // preferential-attachment-flavoured: attach to a random earlier
            // vertex, biased to small indices
            let t = rng.gen_range(0..v);
            let t = t / 2;
            edges.push((v, if t == v { v - 1 } else { t }, 1 + (v % 5) as u64));
        }
        let csr = Csr::from_edges(n as usize, &edges);
        let p = kway(&csr, k(8), &MultilevelConfig::default());
        let m = CutMetrics::compute(&csr, &p);
        assert!(m.static_balance <= 1.30, "balance {}", m.static_balance);
        assert_eq!(p.len(), n as usize);
    }
}
