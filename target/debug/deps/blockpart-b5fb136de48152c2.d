/root/repo/target/debug/deps/blockpart-b5fb136de48152c2.d: src/lib.rs

/root/repo/target/debug/deps/libblockpart-b5fb136de48152c2.rlib: src/lib.rs

/root/repo/target/debug/deps/libblockpart-b5fb136de48152c2.rmeta: src/lib.rs

src/lib.rs:
