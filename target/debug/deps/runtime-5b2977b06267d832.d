/root/repo/target/debug/deps/runtime-5b2977b06267d832.d: tests/runtime.rs

/root/repo/target/debug/deps/runtime-5b2977b06267d832: tests/runtime.rs

tests/runtime.rs:
