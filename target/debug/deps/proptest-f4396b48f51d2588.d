/root/repo/target/debug/deps/proptest-f4396b48f51d2588.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f4396b48f51d2588.rlib: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f4396b48f51d2588.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
