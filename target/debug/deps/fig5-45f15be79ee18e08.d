/root/repo/target/debug/deps/fig5-45f15be79ee18e08.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-45f15be79ee18e08.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
