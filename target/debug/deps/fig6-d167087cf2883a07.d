/root/repo/target/debug/deps/fig6-d167087cf2883a07.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d167087cf2883a07: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
