//! Export a synthetic chain in the paper's public-dataset trace format,
//! read it back, and render a Fig. 2-style contract neighbourhood in DOT.
//!
//! ```sh
//! cargo run --release --example trace_export
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use blockpart::core::experiments::fig2_dot;
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::graph::io::{read_trace, write_trace};
use blockpart::types::Timestamp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(11)).generate();
    println!("generated {} interactions", chain.log.len());

    // -- write the dataset ---------------------------------------------------
    let path = std::env::temp_dir().join("blockpart_trace.txt");
    write_trace(BufWriter::new(File::create(&path)?), &chain.log)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("wrote {} ({bytes} bytes)", path.display());

    // -- read it back ----------------------------------------------------------
    let restored = read_trace(BufReader::new(File::open(&path)?))?;
    assert_eq!(restored.events(), chain.log.events(), "lossless roundtrip");
    println!("roundtrip verified: {} events", restored.len());

    // -- a Fig. 2-style subgraph ------------------------------------------------
    let end = restored.last_time().unwrap_or(Timestamp::EPOCH);
    match fig2_dot(&restored, Timestamp::EPOCH, end, 1) {
        Some(dot) => {
            println!("\n// 1-hop neighbourhood of the busiest contract:");
            // print just the head; the full graph can be piped to graphviz
            for line in dot.lines().take(12) {
                println!("{line}");
            }
            println!("// ... ({} lines total)", dot.lines().count());
        }
        None => println!("no contract in the window"),
    }
    Ok(())
}
