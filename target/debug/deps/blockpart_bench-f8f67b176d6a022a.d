/root/repo/target/debug/deps/blockpart_bench-f8f67b176d6a022a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libblockpart_bench-f8f67b176d6a022a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
