/root/repo/target/debug/deps/fig2-be570f13f3fbef40.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-be570f13f3fbef40.rmeta: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
