//! Compact disk-resident account/contract state for 2PC state shipping.
//!
//! Migration batches in the sharded runtime ship [`AddressState`]
//! snapshots between shards. At paper scale the source `World` does not
//! fit in RAM, so the runtime spools snapshots through this store: an
//! append-only record file plus an `O(V)` in-memory offset index (latest
//! record wins). Contract programs are **not** stored — every contract in
//! the workload is instantiated from a [`ContractTemplate`], so a record
//! holds the template id and the program is recompiled on read; a token
//! contract with a thousand storage slots costs ~16 KiB on disk instead
//! of its code plus slots resident.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use blockpart_ethereum::{AccountState, AddressState, ContractState, ContractTemplate};
use blockpart_types::{Address, Wei};

const TAG_ACCOUNT: u8 = 0;
const TAG_CONTRACT: u8 = 1;

/// An append-only, disk-resident map from [`Address`] to the latest
/// [`AddressState`] snapshot written for it.
///
/// # Examples
///
/// ```
/// use blockpart_storage::AccountStateStore;
/// use blockpart_ethereum::{AccountState, AddressState};
/// use blockpart_types::{Address, Wei};
///
/// let path = std::env::temp_dir().join("bpst-doc.bpst");
/// let mut store = AccountStateStore::create(&path).unwrap();
/// let a = Address::from_index(7);
/// let state = AddressState::Account(AccountState { balance: Wei::new(42), nonce: 3 });
/// store.put(a, &state).unwrap();
/// assert_eq!(store.get(a).unwrap(), Some(state));
/// assert_eq!(store.get(Address::from_index(8)).unwrap(), None);
/// # drop(store);
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct AccountStateStore {
    file: File,
    path: PathBuf,
    index: HashMap<Address, u64>,
    end: u64,
}

impl AccountStateStore {
    /// Creates (truncating) a fresh store at `path`.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<AccountStateStore> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(AccountStateStore {
            file,
            path,
            index: HashMap::new(),
            end: 0,
        })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct addresses with a stored snapshot.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no snapshot has been stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.end
    }

    /// Appends a snapshot for `address`; later reads return this record.
    pub fn put(&mut self, address: Address, state: &AddressState) -> io::Result<()> {
        let mut record = Vec::with_capacity(64);
        record.extend_from_slice(address.as_bytes());
        match state {
            AddressState::Account(a) => {
                record.push(TAG_ACCOUNT);
                record.extend_from_slice(&a.balance.get().to_le_bytes());
                record.extend_from_slice(&a.nonce.to_le_bytes());
            }
            AddressState::Contract(c) => {
                record.push(TAG_CONTRACT);
                record.extend_from_slice(&c.template.id().to_le_bytes());
                record.extend_from_slice(c.creator.as_bytes());
                record.extend_from_slice(&c.balance.get().to_le_bytes());
                record.extend_from_slice(&(c.storage.len() as u64).to_le_bytes());
                // Slot order is irrelevant to the map but fixed here so
                // identical states encode to identical bytes.
                let mut slots: Vec<(u64, u64)> = c.storage.iter().map(|(&k, &v)| (k, v)).collect();
                slots.sort_unstable_by_key(|&(k, _)| k);
                for (k, v) in slots {
                    record.extend_from_slice(&k.to_le_bytes());
                    record.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&record)?;
        self.index.insert(address, self.end);
        self.end += record.len() as u64;
        Ok(())
    }

    /// Reads the latest snapshot for `address`, decoding the record and
    /// recompiling contract programs from their template.
    pub fn get(&mut self, address: Address) -> io::Result<Option<AddressState>> {
        let Some(&offset) = self.index.get(&address) else {
            return Ok(None);
        };
        self.file.seek(SeekFrom::Start(offset))?;
        let mut head = [0u8; 21];
        self.file.read_exact(&mut head)?;
        let stored = Address::from_bytes(head[..20].try_into().expect("20 bytes"));
        if stored != address {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "state store index points at a record for a different address",
            ));
        }
        let mut word = || -> io::Result<u64> {
            let mut b = [0u8; 8];
            self.file.read_exact(&mut b)?;
            Ok(u64::from_le_bytes(b))
        };
        match head[20] {
            TAG_ACCOUNT => {
                let balance = Wei::new(word()?);
                let nonce = word()?;
                Ok(Some(AddressState::Account(AccountState { balance, nonce })))
            }
            TAG_CONTRACT => {
                let template_id = word()?;
                let template = ContractTemplate::from_id(template_id).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown contract template id {template_id}"),
                    )
                })?;
                let mut creator_bytes = [0u8; 20];
                self.file.read_exact(&mut creator_bytes)?;
                let mut word = || -> io::Result<u64> {
                    let mut b = [0u8; 8];
                    self.file.read_exact(&mut b)?;
                    Ok(u64::from_le_bytes(b))
                };
                let balance = Wei::new(word()?);
                let slots = word()?;
                let mut storage = HashMap::with_capacity(slots as usize);
                for _ in 0..slots {
                    let k = word()?;
                    let v = word()?;
                    storage.insert(k, v);
                }
                Ok(Some(AddressState::Contract(ContractState {
                    template,
                    program: template.program(),
                    storage,
                    balance,
                    creator: Address::from_bytes(creator_bytes),
                })))
            }
            tag => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown state record tag {tag}"),
            )),
        }
    }

    /// Writes `state` and immediately reads it back — the runtime's
    /// "serialize migration batches from disk" round-trip. Returns the
    /// decoded snapshot, which is guaranteed equal to `state` for any
    /// template-instantiated contract.
    pub fn roundtrip(
        &mut self,
        address: Address,
        state: &AddressState,
    ) -> io::Result<AddressState> {
        self.put(address, state)?;
        self.get(address)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "state store lost a record it just wrote",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_ethereum::World;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bpst-test-{name}.bpst"))
    }

    #[test]
    fn account_and_contract_roundtrip() {
        let path = temp_path("roundtrip");
        let mut store = AccountStateStore::create(&path).unwrap();
        let mut world = World::new();
        let user = world.new_user(Wei::new(500));
        let token = world.create_contract(ContractTemplate::Token, user, 9);
        world.storage_store(token, 77, 123);
        for addr in [user, token] {
            let state = world.export_state(addr).unwrap();
            let back = store.roundtrip(addr, &state).unwrap();
            assert_eq!(back, state, "round-trip must be lossless for {addr:?}");
        }
        assert_eq!(store.len(), 2);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn latest_record_wins() {
        let path = temp_path("latest");
        let mut store = AccountStateStore::create(&path).unwrap();
        let a = Address::from_index(1);
        let first = AddressState::Account(AccountState {
            balance: Wei::new(1),
            nonce: 0,
        });
        let second = AddressState::Account(AccountState {
            balance: Wei::new(2),
            nonce: 5,
        });
        store.put(a, &first).unwrap();
        store.put(a, &second).unwrap();
        assert_eq!(store.get(a).unwrap(), Some(second));
        assert_eq!(store.len(), 1);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_template_recompiles() {
        let path = temp_path("templates");
        let mut store = AccountStateStore::create(&path).unwrap();
        let mut world = World::new();
        let creator = world.new_user(Wei::new(1));
        for (i, template) in ContractTemplate::ALL.iter().enumerate() {
            let c = world.create_contract(*template, creator, i as u64);
            let state = world.export_state(c).unwrap();
            assert_eq!(store.roundtrip(c, &state).unwrap(), state);
        }
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn contract_records_are_compact() {
        let path = temp_path("compact");
        let mut store = AccountStateStore::create(&path).unwrap();
        let mut world = World::new();
        let user = world.new_user(Wei::ZERO);
        let c = world.create_contract(ContractTemplate::Token, user, 1);
        let state = world.export_state(c).unwrap();
        store.put(c, &state).unwrap();
        // On-disk record: no program bytes, just header + sorted slots.
        assert!(store.bytes_written() < state.approx_bytes() + 64);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }
}
