//! Property-based tests (proptest) over the core data structures and
//! partitioning invariants.

use blockpart::graph::{Csr, GraphBuilder, Interaction, InteractionLog};
use blockpart::partition::{
    kl, CutMetrics, DistributedKl, HashPartitioner, MultilevelConfig, MultilevelPartitioner,
    Partition, PartitionRequest, Partitioner,
};
use blockpart::types::{Address, ShardCount, Timestamp};
use proptest::prelude::*;

/// Random undirected edge lists over up to 64 vertices.
fn edges_strategy(max_nodes: u32) -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 1..50u64)
            .prop_filter("no self-loops", |(u, v, _)| u != v)
            .prop_map(|(u, v, w)| (u, v, w));
        (Just(n as usize), proptest::collection::vec(edge, 0..200))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_from_edges_is_always_valid((n, edges) in edges_strategy(64)) {
        let csr = Csr::from_edges(n, &edges);
        prop_assert!(csr.validate().is_ok());
        // total edge weight equals the sum of the input weights
        let total: u64 = edges.iter().map(|&(_, _, w)| w).sum();
        prop_assert_eq!(csr.total_edge_weight(), total);
    }

    #[test]
    fn graph_to_csr_preserves_weight((n, edges) in edges_strategy(48)) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_interaction(Address::from_index(u as u64), Address::from_index(v as u64), w);
        }
        let g = b.build();
        let csr = g.to_csr();
        prop_assert!(csr.validate().is_ok());
        prop_assert_eq!(csr.total_edge_weight(), g.total_edge_weight());
        prop_assert!(csr.node_count() <= n);
    }

    #[test]
    fn multilevel_partition_is_total_and_bounded(
        (n, edges) in edges_strategy(64),
        kk in 2u16..=8,
        seed in 0u64..1000,
    ) {
        let csr = Csr::from_edges(n, &edges);
        let k = ShardCount::new(kk).unwrap();
        let cfg = MultilevelConfig { seed, ..MultilevelConfig::default() };
        let part = MultilevelPartitioner::new(cfg)
            .partition(&PartitionRequest::new(&csr, k));
        prop_assert_eq!(part.len(), n);
        for v in 0..n {
            prop_assert!(k.contains(part.shard_of(v)));
        }
        let m = CutMetrics::compute(&csr, &part);
        prop_assert!((0.0..=1.0).contains(&m.static_edge_cut));
        prop_assert!((0.0..=1.0).contains(&m.dynamic_edge_cut));
        prop_assert!(m.static_balance >= 1.0 - 1e-9);
        prop_assert!(m.static_balance <= kk as f64 + 1e-9);
    }

    #[test]
    fn hash_partition_is_deterministic_and_id_stable(
        (n, edges) in edges_strategy(32),
        ids in proptest::collection::vec(proptest::num::u64::ANY, 32),
    ) {
        let csr = Csr::from_edges(n, &edges);
        let ids = &ids[..n];
        let k = ShardCount::new(4).unwrap();
        let req = PartitionRequest::new(&csr, k).with_stable_ids(ids);
        let p1 = HashPartitioner::new().partition(&req);
        let p2 = HashPartitioner::new().partition(&req);
        prop_assert_eq!(&p1, &p2);
        // shard depends only on the id, not the vertex position
        for (v, &id) in ids.iter().enumerate() {
            prop_assert_eq!(p1.shard_of(v), HashPartitioner::shard_for_id(id, k));
        }
    }

    #[test]
    fn distributed_kl_never_worsens_given_previous(
        (n, edges) in edges_strategy(48),
        seed in 0u64..100,
    ) {
        let csr = Csr::from_edges(n, &edges);
        let k = ShardCount::TWO;
        // previous = hash partition
        let base_req = PartitionRequest::new(&csr, k);
        let prev = HashPartitioner::new().partition(&base_req);
        let before = CutMetrics::compute(&csr, &prev).cut_weight;
        let req = PartitionRequest::new(&csr, k).with_previous(&prev);
        let part = DistributedKl::with_seed(seed).partition(&req);
        let after = CutMetrics::compute(&csr, &part).cut_weight;
        // KL is a heuristic: it should rarely be much worse; assert the
        // invariant it guarantees — validity — plus a generous bound.
        prop_assert_eq!(part.len(), n);
        prop_assert!(after <= before + csr.total_edge_weight() / 4,
            "kl degraded cut badly: {} -> {}", before, after);
    }

    #[test]
    fn kl_bisection_pass_never_increases_cut((n, edges) in edges_strategy(32)) {
        let csr = Csr::from_edges(n, &edges);
        let assignment: Vec<u16> = (0..n).map(|v| (v % 2) as u16).collect();
        let mut part = Partition::from_assignment(assignment, ShardCount::TWO).unwrap();
        let before = CutMetrics::compute(&csr, &part).cut_weight;
        let gain = kl::kl_bisection_pass(&csr, &mut part);
        let after = CutMetrics::compute(&csr, &part).cut_weight;
        prop_assert!(gain >= 0);
        prop_assert_eq!(after + gain as u64, before);
    }

    #[test]
    fn moves_metric_is_consistent(
        a in proptest::collection::vec(0u16..4, 1..100),
        flips in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let k = ShardCount::new(4).unwrap();
        let n = a.len().min(flips.len());
        let a = &a[..n];
        let b: Vec<u16> = a.iter().zip(&flips[..n])
            .map(|(&s, &f)| if f { (s + 1) % 4 } else { s })
            .collect();
        let pa = Partition::from_assignment(a.to_vec(), k).unwrap();
        let pb = Partition::from_assignment(b.clone(), k).unwrap();
        let expected = flips[..n].iter().filter(|&&f| f).count();
        prop_assert_eq!(pb.moves_from(&pa), expected);
        prop_assert_eq!(pa.moves_from(&pb), expected); // symmetric for equal lengths
        prop_assert_eq!(pa.moves_from(&pa), 0);
    }

    #[test]
    fn interaction_log_window_graphs_are_consistent(
        times in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let log: InteractionLog = sorted.iter().enumerate().map(|(i, &t)| {
            Interaction::new(
                Timestamp::from_secs(t),
                Address::from_index(i as u64 % 10),
                Address::from_index((i as u64 + 1) % 10),
            )
        }).collect();
        // the union of two adjacent windows covers the same events as the
        // enclosing window
        let mid = Timestamp::from_secs(5_000);
        let lo = log.window(Timestamp::EPOCH, mid).len();
        let hi = log.window(mid, Timestamp::from_secs(10_001)).len();
        prop_assert_eq!(lo + hi, log.len());
        // cumulative graph edge weight equals event count (unit weights)
        let g = log.graph_until(Timestamp::from_secs(10_001));
        let self_loops = sorted.len() - g.total_edge_weight() as usize;
        prop_assert!(self_loops == 0 || g.total_edge_weight() < sorted.len() as u64);
    }
}
