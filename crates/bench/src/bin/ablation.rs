//! Runs the design-choice ablations of DESIGN.md §5 on the synthetic
//! history: placement rule, reduced-window length, TR-METIS thresholds and
//! the offline streaming-partitioner comparison.

use blockpart_bench::{generate_history, seed_from_env};
use blockpart_core::ablation::{
    ablation_table, offline_partitioner_comparison, offline_table, placement_ablation,
    scope_window_ablation, threshold_ablation,
};
use blockpart_types::{Duration, ShardCount};

fn main() {
    let chain = generate_history();
    let k = ShardCount::TWO;
    let seed = seed_from_env();

    println!("\n## Ablation — new-vertex placement rule (METIS config, k = 2)\n");
    let runs = placement_ablation(&chain.log, k, seed);
    println!("{}", ablation_table(&runs).render_ascii());

    println!("\n## Ablation — R-METIS reduced-window length\n");
    let windows = [Duration::weeks(1), Duration::weeks(2), Duration::weeks(4)];
    let runs = scope_window_ablation(&chain.log, k, &windows, seed);
    println!("{}", ablation_table(&runs).render_ascii());

    println!("\n## Ablation — TR-METIS trigger thresholds\n");
    let thresholds = [(0.25, 1.5), (0.35, 1.7), (0.50, 2.0), (0.70, 3.0)];
    let runs = threshold_ablation(&chain.log, k, &thresholds, seed);
    println!("{}", ablation_table(&runs).render_ascii());

    println!("\n## Offline comparison — hash vs streaming (LDG, Fennel) vs multilevel\n");
    let rows = offline_partitioner_comparison(&chain.log, k);
    println!("{}", offline_table(&rows).render_ascii());
}
