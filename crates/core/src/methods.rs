//! The five partitioning methods and their canonical configurations.

use blockpart_partition::kl::DistributedKlConfig;
use blockpart_partition::{
    DistributedKl, HashPartitioner, MultilevelConfig, MultilevelPartitioner, Partitioner,
};
use blockpart_shard::{PlacementRule, RepartitionPolicy, RepartitionScope, SimulatorConfig};
use blockpart_types::{Duration, ShardCount};
use serde::{Deserialize, Serialize};

/// One of the paper's five partitioning methods (§II-C).
///
/// The paper's Fig. 4 labels R-METIS as "P-METIS"; they are the same
/// method and [`Method::RMetis`] renders as `R-METIS`.
///
/// # Examples
///
/// ```
/// use blockpart_core::Method;
///
/// assert_eq!(Method::TrMetis.label(), "TR-METIS");
/// assert_eq!(Method::ALL.len(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// `hash(id) mod k`: perfect static balance, no moves, heavy cut.
    Hash,
    /// Distributed Kernighan–Lin with an oracle probability matrix.
    Kl,
    /// Periodic multilevel partitioning of the full cumulative graph.
    Metis,
    /// Periodic multilevel partitioning of the two-week reduced graph.
    RMetis,
    /// Threshold-triggered multilevel partitioning of the reduced graph.
    TrMetis,
}

impl Method {
    /// All methods in the paper's presentation order.
    pub const ALL: [Method; 5] = [
        Method::Hash,
        Method::Kl,
        Method::Metis,
        Method::RMetis,
        Method::TrMetis,
    ];

    /// The display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::Hash => "HASH",
            Method::Kl => "KL",
            Method::Metis => "METIS",
            Method::RMetis => "R-METIS",
            Method::TrMetis => "TR-METIS",
        }
    }

    /// The canonical simulator configuration for this method at `k`
    /// shards: placement rule, repartition policy and scope per the
    /// paper's description (4-hour windows, two-week periods).
    pub fn simulator_config(self, k: ShardCount) -> SimulatorConfig {
        let base = SimulatorConfig::new(k);
        match self {
            Method::Hash => base
                .with_placement(PlacementRule::Hash)
                .with_policy(RepartitionPolicy::Never),
            // §II-C: KL repartitions "based on the transactions executed
            // in the period" — the reduced window, not the cumulative
            // graph, which is what keeps its shards dynamically balanced.
            Method::Kl => base
                .with_placement(PlacementRule::Hash)
                .with_scope(RepartitionScope::Window)
                .with_scope_window(Duration::weeks(2))
                .with_policy(RepartitionPolicy::Periodic {
                    interval: Duration::weeks(2),
                }),
            Method::Metis => base
                .with_placement(PlacementRule::MinCut)
                .with_scope(RepartitionScope::Full)
                .with_policy(RepartitionPolicy::Periodic {
                    interval: Duration::weeks(2),
                }),
            Method::RMetis => base
                .with_placement(PlacementRule::MinCut)
                .with_scope(RepartitionScope::Window)
                .with_scope_window(Duration::weeks(2))
                .with_policy(RepartitionPolicy::Periodic {
                    interval: Duration::weeks(2),
                }),
            Method::TrMetis => base
                .with_placement(PlacementRule::MinCut)
                .with_scope(RepartitionScope::Window)
                .with_scope_window(Duration::weeks(2))
                // thresholds picked via the ablation sweep (bin/ablation):
                // this setting halves the moves of R-METIS while matching
                // its edge-cut and balance — the paper's "dramatic
                // decrease ... without compromising edge-cuts and balance"
                .with_policy(RepartitionPolicy::Threshold {
                    edge_cut: 0.5,
                    balance: 2.0,
                    // same cadence cap as the periodic methods: TR-METIS
                    // exists to repartition *less*, never more
                    min_interval: Duration::weeks(2),
                }),
        }
    }

    /// Constructs the partitioner backing this method, seeded for
    /// reproducibility.
    pub fn partitioner(self, seed: u64) -> Box<dyn Partitioner> {
        match self {
            Method::Hash => Box::new(HashPartitioner::new()),
            Method::Kl => Box::new(DistributedKl::new(DistributedKlConfig {
                seed,
                ..DistributedKlConfig::default()
            })),
            Method::Metis | Method::RMetis | Method::TrMetis => {
                Box::new(MultilevelPartitioner::new(MultilevelConfig {
                    seed,
                    ..MultilevelConfig::default()
                }))
            }
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn hash_never_repartitions() {
        let cfg = Method::Hash.simulator_config(ShardCount::TWO);
        assert_eq!(cfg.policy, RepartitionPolicy::Never);
        assert_eq!(cfg.placement, PlacementRule::Hash);
    }

    #[test]
    fn metis_family_uses_min_cut_placement() {
        for m in [Method::Metis, Method::RMetis, Method::TrMetis] {
            assert_eq!(
                m.simulator_config(ShardCount::TWO).placement,
                PlacementRule::MinCut,
                "{m}"
            );
        }
    }

    #[test]
    fn reduced_scope_for_r_and_tr() {
        assert_eq!(
            Method::Metis.simulator_config(ShardCount::TWO).scope,
            RepartitionScope::Full
        );
        for m in [Method::RMetis, Method::TrMetis] {
            assert_eq!(
                m.simulator_config(ShardCount::TWO).scope,
                RepartitionScope::Window,
                "{m}"
            );
        }
    }

    #[test]
    fn partitioner_names() {
        assert_eq!(Method::Hash.partitioner(0).name(), "hash");
        assert_eq!(Method::Kl.partitioner(0).name(), "kl");
        assert_eq!(Method::Metis.partitioner(0).name(), "metis");
    }
}
