/root/repo/target/debug/deps/serde-2fd060bc6ad31e06.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2fd060bc6ad31e06.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
