/root/repo/target/release/deps/blockpart_runtime-303342c084bc5407.d: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

/root/repo/target/release/deps/libblockpart_runtime-303342c084bc5407.rlib: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

/root/repo/target/release/deps/libblockpart_runtime-303342c084bc5407.rmeta: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

crates/runtime/src/lib.rs:
crates/runtime/src/clock.rs:
crates/runtime/src/coordinator.rs:
crates/runtime/src/event.rs:
crates/runtime/src/locks.rs:
crates/runtime/src/net.rs:
crates/runtime/src/report.rs:
crates/runtime/src/shard_worker.rs:
