/root/repo/target/debug/deps/runtime-4963ea5517076180.d: tests/runtime.rs

/root/repo/target/debug/deps/runtime-4963ea5517076180: tests/runtime.rs

tests/runtime.rs:
