//! Log-binned histograms, for degree and activity distributions.

use serde::{Deserialize, Serialize};

/// A base-2 log-binned histogram of non-negative integers: bin `i` counts
/// values in `[2^i, 2^(i+1))`, with a dedicated zero bin.
///
/// Heavy-tailed distributions (blockchain degrees, account activity) are
/// unreadable in linear bins; log bins make the power-law slope visible.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::LogHistogram;
///
/// let h: LogHistogram = [0u64, 1, 1, 2, 3, 700].into_iter().collect();
/// assert_eq!(h.zero_count(), 1);
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bin_for(700), 9); // 2^9 = 512 <= 700 < 1024
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    zero: u64,
    bins: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
        if value == 0 {
            self.zero += 1;
            return;
        }
        let bin = Self::bin_of(value);
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of zero observations.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The bin index a value would land in (zero goes to the zero bin and
    /// reports bin 0 here for display purposes).
    pub fn bin_for(&self, value: u64) -> usize {
        if value == 0 {
            0
        } else {
            Self::bin_of(value)
        }
    }

    /// `(lower_bound, count)` per non-empty bin, ascending.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    fn bin_of(value: u64) -> usize {
        (63 - value.leading_zeros()) as usize
    }
}

impl Extend<u64> for LogHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries() {
        let h = LogHistogram::new();
        assert_eq!(h.bin_for(1), 0);
        assert_eq!(h.bin_for(2), 1);
        assert_eq!(h.bin_for(3), 1);
        assert_eq!(h.bin_for(4), 2);
        assert_eq!(h.bin_for(u64::MAX), 63);
    }

    #[test]
    fn record_and_stats() {
        let h: LogHistogram = [0u64, 0, 1, 4, 5, 16].into_iter().collect();
        assert_eq!(h.count(), 6);
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 26.0 / 6.0).abs() < 1e-12);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins, vec![(1, 1), (4, 2), (16, 1)]);
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.bins().count(), 0);
    }
}
