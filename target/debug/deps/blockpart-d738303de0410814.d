/root/repo/target/debug/deps/blockpart-d738303de0410814.d: src/lib.rs

/root/repo/target/debug/deps/libblockpart-d738303de0410814.rlib: src/lib.rs

/root/repo/target/debug/deps/libblockpart-d738303de0410814.rmeta: src/lib.rs

src/lib.rs:
