/root/repo/target/debug/deps/blockpart_runtime-21df73eef9a31cd1.d: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

/root/repo/target/debug/deps/libblockpart_runtime-21df73eef9a31cd1.rlib: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

/root/repo/target/debug/deps/libblockpart_runtime-21df73eef9a31cd1.rmeta: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

crates/runtime/src/lib.rs:
crates/runtime/src/clock.rs:
crates/runtime/src/coordinator.rs:
crates/runtime/src/event.rs:
crates/runtime/src/locks.rs:
crates/runtime/src/net.rs:
crates/runtime/src/report.rs:
crates/runtime/src/shard_worker.rs:
