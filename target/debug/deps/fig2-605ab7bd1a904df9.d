/root/repo/target/debug/deps/fig2-605ab7bd1a904df9.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-605ab7bd1a904df9.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
