//! Quickstart: synthesize a chain, shard it with the five paper
//! strategies (plus a parameterized variant), print the edge-cut /
//! balance / moves trade-off table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blockpart::core::{Experiment, StrategyRegistry};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::types::ShardCount;

fn main() {
    // A 14-day toy history (a few thousand transactions). Swap in
    // `GeneratorConfig::demo_scale(7)` for the full 30-month timeline.
    let config = GeneratorConfig::test_scale(7);
    println!(
        "generating synthetic chain (seed {}, scale {})...",
        config.seed, config.scale
    );
    let chain = ChainGenerator::new(config).generate();
    println!(
        "  {} blocks, {} transactions, {} interactions, {} contracts\n",
        chain.chain.block_count(),
        chain.chain.tx_count(),
        chain.log.len(),
        chain.chain.world().contract_count(),
    );

    println!("running the five paper strategies (plus a one-week R-METIS) at k = 2 and k = 8...\n");
    let registry = StrategyRegistry::with_builtins();
    let report = Experiment::over_chain(&chain)
        .named_strategies(&registry, "all,r-metis[window=7]")
        .expect("built-in strategies resolve")
        .shard_counts(vec![ShardCount::TWO, ShardCount::new(8).expect("8 > 0")])
        .run();

    println!("{}", report.offline_table().render_ascii());

    println!("reading the table:");
    println!("  * HASH never moves a vertex but cuts the most edges;");
    println!("  * METIS cuts the fewest edges but moves the most state;");
    println!("  * TR-METIS approaches R-METIS quality with fewer repartitions;");
    println!("  * the bracketed R-METIS variant repartitions on fresher, thinner data.");
}
