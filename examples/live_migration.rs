//! Live repartitioning under a hub-contract burst: start from hash
//! placement, let the TR-METIS-style threshold trigger fire as a hot
//! dApp emerges, and watch state migrate through the 2PC runtime while
//! foreground traffic keeps flowing.
//!
//! The workload has two acts. In act one, 64 users exchange pairwise
//! transfers — hash placement is fine. In act two a crowdsale contract
//! launches and every user piles onto it: the newest windows of the
//! interaction graph become a hub, the window cut under hash placement
//! blows past the trigger threshold, and the live service re-partitions
//! and ships the hub's community onto one shard *while the burst is
//! still running*. The episode table prints throughput and p99 before,
//! during and after each migration.
//!
//! ```sh
//! cargo run --release --example live_migration
//! ```

use blockpart::ethereum::{
    ContractTemplate, ExecutedTx, Receipt, Transaction, TxPayload, TxStatus, World,
};
use blockpart::live::{LiveConfig, LiveRunner};
use blockpart::partition::{MultilevelConfig, MultilevelPartitioner};
use blockpart::shard::RepartitionPolicy;
use blockpart::types::{Address, Duration, Gas, ShardCount, Timestamp, Wei};

fn executed(from: Address, to: Address, payload: TxPayload, secs: u64) -> ExecutedTx {
    let gas_used = match payload {
        TxPayload::Transfer => Gas::new(21_000),
        _ => Gas::new(90_000),
    };
    let tx = Transaction {
        from,
        to,
        value: Wei::new(10),
        gas_limit: Gas::new(400_000),
        payload,
    };
    let receipt = Receipt {
        status: TxStatus::Success,
        gas_used,
        calls: Vec::new(),
        created: Vec::new(),
    };
    ExecutedTx::new(Timestamp::from_secs(secs), tx, &receipt)
}

fn main() {
    // -- world: 64 users and a (not yet busy) crowdsale hub -----------------
    let mut world = World::new();
    let founder = world.new_user(Wei::new(1_000_000_000));
    let users: Vec<Address> = (0..64)
        .map(|_| world.new_user(Wei::new(1_000_000)))
        .collect();
    let hub = world.create_contract(ContractTemplate::Crowdsale, founder, 0);

    // -- act one (hours 0..12): quiet pairwise background traffic ----------
    let mut txs = Vec::new();
    for h in 0..12u64 {
        for m in 0..30u64 {
            let t = h * 3_600 + m * 120;
            let i = ((h * 31 + m * 7) as usize) % users.len();
            let j = (i + 1 + (m as usize % 5)) % users.len();
            txs.push(executed(users[i], users[j], TxPayload::Transfer, t));
        }
    }

    // -- act two (hours 12..24): everyone hammers the hub contract ---------
    for h in 12..24u64 {
        for m in 0..60u64 {
            let t = h * 3_600 + m * 60;
            let i = ((h * 17 + m) as usize) % users.len();
            txs.push(executed(users[i], hub, TxPayload::Call { arg: 0 }, t));
            // the background pairs keep going underneath the burst
            if m.is_multiple_of(4) {
                let j = ((h + m) as usize) % users.len();
                let k = (j + 3) % users.len();
                txs.push(executed(users[j], users[k], TxPayload::Transfer, t + 20));
            }
        }
    }
    txs.sort_by_key(|e| e.time);

    // -- live service: hash start, TR-METIS-style threshold trigger --------
    let k = ShardCount::new(4).unwrap();
    let cfg = LiveConfig::new(k)
        .with_window(Duration::hours(1))
        .with_depth(4)
        .with_policy(RepartitionPolicy::Threshold {
            edge_cut: 0.4,
            balance: 2.0,
            min_interval: Duration::hours(2),
        })
        .with_label("tr-metis");
    let partitioner = Box::new(MultilevelPartitioner::new(MultilevelConfig::default()));
    let run = LiveRunner::new(cfg, partitioner).run(&world, &txs);

    println!("{}", run.report.headline());
    println!();
    println!("{}", run.report.episode_table().render_ascii());

    assert!(
        run.report.migrations() >= 1,
        "the hub burst should trigger at least one live migration"
    );
    assert_eq!(
        run.report.total_failed(),
        0,
        "no transaction may be dropped"
    );
    println!(
        "\n{} accounts ({} bytes) migrated live in {:.1} ms; worst during-migration p99 {} µs",
        run.report.accounts_moved(),
        run.report.bytes_moved(),
        run.report.migration_wall_us() as f64 / 1_000.0,
        run.report.worst_during_p99_us()
    );
}
