/root/repo/target/debug/deps/generator-76be9b18fce9574e.d: crates/bench/benches/generator.rs

/root/repo/target/debug/deps/libgenerator-76be9b18fce9574e.rmeta: crates/bench/benches/generator.rs

crates/bench/benches/generator.rs:
