//! # blockpart
//!
//! A reproduction of **“Challenges and Pitfalls of Partitioning
//! Blockchains”** (Fynn & Pedone, DSN 2018) as a reusable Rust toolkit:
//! model a blockchain as a weighted interaction graph, shard it with five
//! partitioning methods, and measure the edge-cut / balance / moves
//! trade-offs the paper reports.
//!
//! This crate is a facade over the workspace:
//!
//! * [`types`] — newtypes (addresses, shards, time, gas);
//! * [`graph`] — the interaction graph, CSR views, windows, algorithms;
//! * [`partition`] — hashing, Kernighan–Lin (classic + distributed),
//!   multilevel METIS-style k-way partitioning;
//! * [`ethereum`] — a synthetic chain substrate: EVM-lite, contracts,
//!   blocks and the era-driven workload generator;
//! * [`shard`] — the sharding simulator (placement, repartition policies,
//!   move accounting);
//! * [`storage`] — the out-of-core backend: on-disk segment store,
//!   external-memory CSR build, compact account-state spool;
//! * [`runtime`] — the sharded 2PC execution engine;
//! * [`live`] — the online repartitioning service: windowed graph,
//!   triggered re-partition, live state migration through the 2PC
//!   runtime;
//! * [`metrics`] — summary statistics and report rendering;
//! * [`obs`] — spans/events, a metrics registry and Perfetto/profile
//!   exporters (virtual-clock traces are deterministic);
//! * [`core`] — the strategy registry, the unified experiment pipeline
//!   and one entry point per paper figure.
//!
//! The strategy surface is open: implement
//! [`StrategySpec`](crate::core::StrategySpec), register it with a
//! [`StrategyRegistry`](crate::core::StrategyRegistry) and run it through
//! [`Experiment`](crate::core::Experiment) — see the README's *Extending
//! with your own strategy* section (compile-tested below).
//!
//! # Quickstart
//!
//! ```
//! use blockpart::core::{Method, Study};
//! use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
//! use blockpart::types::ShardCount;
//!
//! // 1. synthesize a chain (a 14-day toy history; use demo_scale for the
//! //    full 30-month timeline)
//! let chain = ChainGenerator::new(GeneratorConfig::test_scale(7)).generate();
//!
//! // 2. shard it two ways
//! let result = Study::new(&chain.log)
//!     .methods(vec![Method::Hash, Method::Metis])
//!     .shard_counts(vec![ShardCount::TWO])
//!     .run();
//!
//! // 3. the paper's headline: hashing never moves state but cuts many
//! //    edges; METIS cuts few edges but moves a lot of state
//! let hash = result.get(Method::Hash, ShardCount::TWO).unwrap();
//! let metis = result.get(Method::Metis, ShardCount::TWO).unwrap();
//! assert_eq!(hash.total_moves, 0);
//! assert!(metis.total_moves > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use blockpart_core as core;
pub use blockpart_ethereum as ethereum;
pub use blockpart_graph as graph;
pub use blockpart_live as live;
pub use blockpart_metrics as metrics;
pub use blockpart_obs as obs;
pub use blockpart_partition as partition;
pub use blockpart_runtime as runtime;
pub use blockpart_shard as shard;
pub use blockpart_storage as storage;
pub use blockpart_types as types;

/// The README's code blocks, compile-tested as doctests (`cargo test`
/// runs them; the "extending with your own strategy" example must keep
/// working against the current API).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
