/root/repo/target/debug/deps/blockpart-93887ce4069c6ce2.d: src/bin/blockpart.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-93887ce4069c6ce2.rmeta: src/bin/blockpart.rs Cargo.toml

src/bin/blockpart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
