//! Storage-backend selection for the out-of-core data path.
//!
//! Every heavy data structure in the workspace — the interaction log, the
//! graph build's edge accumulation, the symmetric CSR — can either live
//! entirely in RAM or spill to disk under a memory budget. The choice is a
//! [`StorageBackend`] value threaded from the CLI / environment down into
//! the graph and storage crates. Spilled and resident paths are required
//! to produce **byte-identical** results wherever both fit; the backend
//! trades only peak memory for disk traffic.

use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable naming the memory budget (e.g. `512m`, `2g`,
/// `1048576`). When set, commands that accept a backend default to
/// [`StorageBackend::Spill`].
pub const MEM_BUDGET_ENV: &str = "BLOCKPART_MEM_BUDGET";

/// Environment variable naming the spill directory root. Defaults to the
/// system temp directory when unset.
pub const SPILL_DIR_ENV: &str = "BLOCKPART_SPILL_DIR";

/// Where the heavy data structures of a run live.
///
/// # Examples
///
/// ```
/// use blockpart_types::StorageBackend;
///
/// let b = StorageBackend::spill("/tmp/blockpart", 512 * 1024 * 1024);
/// assert!(b.is_spill());
/// assert_eq!(b.mem_budget_bytes(), Some(512 * 1024 * 1024));
/// assert!(!StorageBackend::InMemory.is_spill());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// Everything resident: the fastest path when the working set fits.
    #[default]
    InMemory,
    /// Spill-to-disk under a budget: edge accumulations that outgrow
    /// `mem_budget_bytes` are sorted and written as runs under `dir`,
    /// then streamed back through an external merge.
    Spill {
        /// Root directory for spill runs (each run gets a unique subdir).
        dir: PathBuf,
        /// Soft cap, in bytes, on the resident accumulation state.
        mem_budget_bytes: u64,
    },
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageBackend::InMemory => write!(f, "in-memory"),
            StorageBackend::Spill {
                dir,
                mem_budget_bytes,
            } => write!(f, "spill({}, {} bytes)", dir.display(), mem_budget_bytes),
        }
    }
}

impl StorageBackend {
    /// A spill backend rooted at `dir` with the given budget.
    pub fn spill(dir: impl Into<PathBuf>, mem_budget_bytes: u64) -> Self {
        StorageBackend::Spill {
            dir: dir.into(),
            mem_budget_bytes,
        }
    }

    /// `true` for the spill-to-disk variant.
    pub fn is_spill(&self) -> bool {
        matches!(self, StorageBackend::Spill { .. })
    }

    /// The memory budget, when one is configured.
    pub fn mem_budget_bytes(&self) -> Option<u64> {
        match self {
            StorageBackend::InMemory => None,
            StorageBackend::Spill {
                mem_budget_bytes, ..
            } => Some(*mem_budget_bytes),
        }
    }

    /// The spill root, when one is configured.
    pub fn spill_dir(&self) -> Option<&Path> {
        match self {
            StorageBackend::InMemory => None,
            StorageBackend::Spill { dir, .. } => Some(dir.as_path()),
        }
    }

    /// Resolves the backend from the environment:
    /// [`MEM_BUDGET_ENV`] selects spill mode with that budget, rooted at
    /// [`SPILL_DIR_ENV`] (or the system temp directory). Returns
    /// [`StorageBackend::InMemory`] when the budget variable is unset or
    /// unparseable.
    pub fn from_env() -> Self {
        let Some(budget) = std::env::var(MEM_BUDGET_ENV)
            .ok()
            .and_then(|v| parse_mem_budget(&v))
        else {
            return StorageBackend::InMemory;
        };
        let dir = std::env::var_os(SPILL_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        StorageBackend::spill(dir, budget)
    }
}

/// Parses a memory budget: a plain byte count, or a number with a binary
/// suffix `k`/`m`/`g` (case-insensitive, optional trailing `b` / `ib`).
///
/// # Examples
///
/// ```
/// use blockpart_types::parse_mem_budget;
///
/// assert_eq!(parse_mem_budget("4096"), Some(4096));
/// assert_eq!(parse_mem_budget("512m"), Some(512 * 1024 * 1024));
/// assert_eq!(parse_mem_budget("2GiB"), Some(2 * 1024 * 1024 * 1024));
/// assert_eq!(parse_mem_budget("lots"), None);
/// ```
pub fn parse_mem_budget(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let lower = s.to_ascii_lowercase();
    let lower = lower
        .strip_suffix("ib")
        .or_else(|| lower.strip_suffix('b'))
        .unwrap_or(&lower);
    let (digits, mult) = match lower.as_bytes().last()? {
        b'k' => (&lower[..lower.len() - 1], 1u64 << 10),
        b'm' => (&lower[..lower.len() - 1], 1u64 << 20),
        b'g' => (&lower[..lower.len() - 1], 1u64 << 30),
        _ => (lower, 1),
    };
    let value: u64 = digits.trim().parse().ok()?;
    value.checked_mul(mult)
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A per-run unique spill directory with deterministic cleanup semantics:
/// removed on success ([`SpillSession::finish`]), kept — with its path
/// logged to stderr — when dropped without finishing (a failed run), so
/// repeated CI runs do not accumulate segments while crash evidence
/// survives.
///
/// # Examples
///
/// ```
/// use blockpart_types::SpillSession;
///
/// let session = SpillSession::create(std::env::temp_dir()).unwrap();
/// let path = session.path().to_path_buf();
/// assert!(path.is_dir());
/// session.finish().unwrap();
/// assert!(!path.exists());
/// ```
#[derive(Debug)]
pub struct SpillSession {
    path: PathBuf,
    finished: bool,
}

impl SpillSession {
    /// Creates a fresh uniquely-named subdirectory under `root`
    /// (creating `root` itself if needed).
    pub fn create(root: impl AsRef<Path>) -> std::io::Result<Self> {
        let root = root.as_ref();
        std::fs::create_dir_all(root)?;
        // Uniqueness: pid + per-process counter + a per-call random nonce
        // (from the stdlib's seeded hasher) guards against collisions
        // with concurrent processes and stale directories alike.
        for _ in 0..64 {
            let mut h = std::collections::hash_map::RandomState::new().build_hasher();
            h.write_u64(SPILL_COUNTER.fetch_add(1, Ordering::Relaxed));
            let nonce = h.finish();
            let name = format!(
                "run-{:08x}-{:012x}",
                std::process::id(),
                nonce & 0xffff_ffff_ffff
            );
            let path = root.join(name);
            match std::fs::create_dir(&path) {
                Ok(()) => {
                    return Ok(SpillSession {
                        path,
                        finished: false,
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "could not allocate a unique spill directory",
        ))
    }

    /// The session's private directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Marks the run successful and removes the directory and all spill
    /// files in it.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.finished = true;
        std::fs::remove_dir_all(&self.path)
    }

    /// Keeps the directory on disk (e.g. for post-mortem inspection)
    /// without logging a failure.
    pub fn keep(mut self) -> PathBuf {
        self.finished = true;
        std::mem::take(&mut self.path)
    }
}

impl Drop for SpillSession {
    fn drop(&mut self) {
        if !self.finished {
            eprintln!(
                "blockpart: spill directory kept for inspection: {}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_budgets() {
        assert_eq!(parse_mem_budget("0"), Some(0));
        assert_eq!(parse_mem_budget(" 64k "), Some(64 << 10));
        assert_eq!(parse_mem_budget("3M"), Some(3 << 20));
        assert_eq!(parse_mem_budget("1g"), Some(1 << 30));
        assert_eq!(parse_mem_budget("512mb"), Some(512 << 20));
        assert_eq!(parse_mem_budget("512MiB"), Some(512 << 20));
        assert_eq!(parse_mem_budget(""), None);
        assert_eq!(parse_mem_budget("-1"), None);
        assert_eq!(parse_mem_budget("12q"), None);
        assert_eq!(parse_mem_budget("99999999999g"), None); // overflow
    }

    #[test]
    fn backend_accessors() {
        let b = StorageBackend::spill("/tmp/x", 7);
        assert!(b.is_spill());
        assert_eq!(b.mem_budget_bytes(), Some(7));
        assert_eq!(b.spill_dir(), Some(Path::new("/tmp/x")));
        assert_eq!(StorageBackend::default(), StorageBackend::InMemory);
        assert_eq!(StorageBackend::InMemory.mem_budget_bytes(), None);
        assert!(!StorageBackend::InMemory.to_string().is_empty());
        assert!(b.to_string().contains("spill"));
    }

    #[test]
    fn spill_sessions_are_unique_and_cleaned() {
        let root = std::env::temp_dir().join("blockpart-types-test-spill");
        let a = SpillSession::create(&root).unwrap();
        let b = SpillSession::create(&root).unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = b.keep();
        a.finish().unwrap();
        assert!(kept.is_dir());
        std::fs::remove_dir_all(kept).unwrap();
        let _ = std::fs::remove_dir(&root);
    }
}
