//! Pluggable intra-shard transaction execution engines.
//!
//! The sharded runtime prices the paper's cross-shard coordination, but
//! *within* a shard every transaction used to execute serially. This
//! module turns that step into an API: an [`ExecutionEngine`] executes a
//! block of transactions against a [`World`] and commits in
//! deterministic block order, so every engine produces byte-identical
//! receipts and world state regardless of how it schedules the work.
//!
//! Two engines ship with the crate:
//!
//! - [`SerialEngine`] — the original one-at-a-time path.
//! - [`ParallelEngine`] — a Block-STM-style optimistic scheduler:
//!   speculative parallel execution over work-stealing lanes against a
//!   multi-version [`OverlayView`], read-set validation in block order,
//!   re-execution on conflict.
//!
//! Engines are selected by name through `blockpart_core::EngineRegistry`
//! (`serial`, `parallel[lanes=0;retry=4;window=32]`) and threaded
//! through `RuntimeConfig`, `Experiment` and the `--exec` CLI flag.

mod parallel;
mod view;

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use blockpart_obs::Trace;

use crate::evm::{ExecContext, Vm};
use crate::state::World;
use crate::transaction::{Receipt, Transaction};

pub use parallel::ParallelEngine;
pub use view::{execute_captured, speculate, OverlayView, Resource, Speculation, VmState};

/// One transaction ready for engine execution: the transaction plus the
/// deterministic per-transaction context (block time, entropy, gas).
#[derive(Clone, Copy, Debug)]
pub struct ExecRequest {
    /// The transaction to execute.
    pub tx: Transaction,
    /// Its execution environment.
    pub ctx: ExecContext,
}

impl ExecRequest {
    /// Bundles a transaction with its context.
    pub fn new(tx: Transaction, ctx: ExecContext) -> Self {
        ExecRequest { tx, ctx }
    }
}

/// Scheduler counters an engine accumulates while executing a block.
///
/// Every counter is derived from deterministic state, never from thread
/// timing, so the numbers are identical across lane counts and reruns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Transactions executed speculatively.
    pub speculated: u64,
    /// Speculations whose read/write footprint was invalidated by an
    /// earlier commit.
    pub conflicts: u64,
    /// Serial re-executions performed after a failed validation (or past
    /// the per-wave retry budget).
    pub re_executions: u64,
    /// Speculation waves the block was executed in.
    pub waves: u64,
}

impl ExecMetrics {
    /// Accumulates another metrics record into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.speculated += other.speculated;
        self.conflicts += other.conflicts;
        self.re_executions += other.re_executions;
        self.waves += other.waves;
    }
}

/// The result of executing one block through an engine: per-transaction
/// receipts in block order plus the scheduler counters.
#[derive(Clone, Debug)]
pub struct BlockOutcome {
    /// One receipt per submitted request, in block order.
    pub receipts: Vec<Receipt>,
    /// Scheduler counters for the block.
    pub metrics: ExecMetrics,
}

/// A pluggable intra-shard execution engine.
///
/// The contract every engine must honor: receipts and the resulting
/// world state are byte-identical to serial in-order execution, for any
/// lane count and across reruns. Parallelism may only change wall-clock
/// time and the [`ExecMetrics`] an engine happens to report about its
/// own scheduling (which must themselves be lane-independent).
pub trait ExecutionEngine: Send + Sync {
    /// The engine's canonical name, including its configured parameters
    /// (e.g. `parallel[lanes=0;retry=4;window=32]`). Machine-independent:
    /// auto-sized parameters are reported as configured, not resolved.
    fn name(&self) -> String;

    /// Executes `block` against `world`, committing in block order.
    fn execute_block(&self, world: &mut World, block: &[ExecRequest]) -> BlockOutcome;

    /// Executes a single transaction directly — the hot path the
    /// discrete-event shard worker drives one transaction at a time.
    fn execute_one(&self, world: &mut World, req: &ExecRequest) -> Receipt {
        Vm::execute(world, &req.tx, &req.ctx)
    }

    /// How many queued transactions the shard worker should execute
    /// speculatively ahead of the commit point. `0` disables speculation
    /// (the serial engine's answer).
    fn speculation_window(&self) -> usize {
        0
    }

    /// Speculatively executes `reqs` against a read-only `world`,
    /// returning one [`Speculation`] per request (aligned by index).
    /// Engines without speculation return an empty vector.
    fn speculate(&self, _world: &World, _reqs: &[ExecRequest]) -> Vec<Speculation> {
        Vec::new()
    }

    /// Like [`execute_block`](Self::execute_block), recording wall-clock
    /// spans and scheduler counters into `trace`. The default records
    /// the counters only; engines with internal parallelism also emit
    /// per-lane spans.
    fn execute_block_traced(
        &self,
        world: &mut World,
        block: &[ExecRequest],
        trace: &mut Trace,
    ) -> BlockOutcome {
        let out = self.execute_block(world, block);
        record_metrics(trace, &out.metrics);
        out
    }
}

/// Records an outcome's scheduler counters into a trace's metric
/// registry under the `exec/` prefix.
pub(crate) fn record_metrics(trace: &mut Trace, metrics: &ExecMetrics) {
    use blockpart_obs::Collector;
    if !trace.enabled() {
        return;
    }
    trace.add("exec/speculated", metrics.speculated);
    trace.add("exec/conflicts", metrics.conflicts);
    trace.add("exec/re_executions", metrics.re_executions);
    trace.add("exec/waves", metrics.waves);
}

/// A cheaply clonable, shareable handle to an [`ExecutionEngine`].
///
/// `Deref`s to the trait object, so engine methods are called directly
/// on the handle. The default handle is the serial engine — which is
/// how every pre-existing entry point keeps its exact behavior.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::exec::ExecHandle;
///
/// let engine = ExecHandle::default();
/// assert_eq!(engine.name(), "serial");
/// assert_eq!(engine.speculation_window(), 0);
/// ```
#[derive(Clone)]
pub struct ExecHandle(Arc<dyn ExecutionEngine>);

impl ExecHandle {
    /// Wraps an engine in a shareable handle.
    pub fn new(engine: impl ExecutionEngine + 'static) -> Self {
        ExecHandle(Arc::new(engine))
    }

    /// Wraps an already-shared engine.
    pub fn from_arc(engine: Arc<dyn ExecutionEngine>) -> Self {
        ExecHandle(engine)
    }
}

impl Default for ExecHandle {
    fn default() -> Self {
        ExecHandle::new(SerialEngine)
    }
}

impl fmt::Debug for ExecHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExecHandle({})", self.0.name())
    }
}

impl Deref for ExecHandle {
    type Target = dyn ExecutionEngine;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// The original intra-shard execution path: every transaction executes
/// directly on the world, one at a time, in block order.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::exec::{ExecRequest, ExecutionEngine, SerialEngine};
/// use blockpart_ethereum::evm::ExecContext;
/// use blockpart_ethereum::{Transaction, TxPayload, World};
/// use blockpart_types::{Gas, Timestamp, Wei};
///
/// let mut world = World::new();
/// let alice = world.new_user(Wei::new(100));
/// let bob = world.new_user(Wei::ZERO);
/// let tx = Transaction {
///     from: alice,
///     to: bob,
///     value: Wei::new(10),
///     gas_limit: Gas::new(30_000),
///     payload: TxPayload::Transfer,
/// };
/// let req = ExecRequest::new(tx, ExecContext::new(Timestamp::from_secs(1), 1, tx.gas_limit));
/// let out = SerialEngine.execute_block(&mut world, &[req]);
/// assert!(out.receipts[0].is_success());
/// assert_eq!(out.metrics.speculated, 0);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialEngine;

impl ExecutionEngine for SerialEngine {
    fn name(&self) -> String {
        "serial".to_string()
    }

    fn execute_block(&self, world: &mut World, block: &[ExecRequest]) -> BlockOutcome {
        let receipts = block
            .iter()
            .map(|req| Vm::execute(world, &req.tx, &req.ctx))
            .collect();
        BlockOutcome {
            receipts,
            metrics: ExecMetrics::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_types::{Gas, Timestamp, Wei};

    use crate::program::ContractTemplate;
    use crate::transaction::TxPayload;

    fn world_with_token() -> (World, blockpart_types::Address, blockpart_types::Address) {
        let mut world = World::new();
        let user = world.new_user(Wei::new(1_000_000));
        let token = world.create_contract(ContractTemplate::Token, user, user.index());
        (world, user, token)
    }

    fn call(from: blockpart_types::Address, to: blockpart_types::Address, arg: u64) -> ExecRequest {
        let tx = Transaction {
            from,
            to,
            value: Wei::ZERO,
            gas_limit: Gas::new(400_000),
            payload: TxPayload::Call { arg },
        };
        ExecRequest::new(
            tx,
            ExecContext::new(Timestamp::from_secs(10), 3, tx.gas_limit),
        )
    }

    #[test]
    fn serial_engine_matches_direct_execution() {
        let (mut w1, user, token) = world_with_token();
        let mut w2 = w1.clone();
        let req = call(user, token, user.index());
        let direct = Vm::execute(&mut w1, &req.tx, &req.ctx);
        let engine = SerialEngine.execute_block(&mut w2, &[req]);
        assert_eq!(engine.receipts, vec![direct]);
        assert_eq!(
            w1.storage_load(token, user.index()),
            w2.storage_load(token, user.index())
        );
    }

    #[test]
    fn default_handle_is_serial() {
        let h = ExecHandle::default();
        assert_eq!(h.name(), "serial");
        assert_eq!(format!("{h:?}"), "ExecHandle(serial)");
        assert!(h.speculate(&World::new(), &[]).is_empty());
    }

    #[test]
    fn speculation_captures_token_call_as_read_and_write() {
        // the satellite fix: a hub-contract call reads the program and
        // writes storage, so the contract appears in both sets
        let (world, user, token) = world_with_token();
        let req = call(user, token, user.index());
        let spec = speculate(&world, &req.tx, &req.ctx);
        assert!(spec.read_addresses().contains(&token), "token not read");
        assert!(spec.write_addresses().contains(&token), "token not written");
        assert!(spec.read_addresses().contains(&user));
        assert!(spec.write_addresses().contains(&user));
    }

    #[test]
    fn metrics_merge_accumulates() {
        let mut a = ExecMetrics {
            speculated: 1,
            conflicts: 2,
            re_executions: 3,
            waves: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.speculated, 2);
        assert_eq!(a.waves, 8);
    }
}
