//! Property tests: live migration conserves state and is deterministic.
//!
//! Three invariants of the live repartitioning service, over randomized
//! community workloads and shard maps:
//!
//! 1. **Conservation** — after any number of triggered migrations, every
//!    account holds state on exactly one shard, no transaction is
//!    dropped, and total balance is unchanged.
//! 2. **Migration transparency** — the final world state equals the
//!    no-migration run's (the workload is commutative transfers with
//!    ample balances, so commit order cannot change the outcome; only a
//!    lost or duplicated account could).
//! 3. **Worker-count determinism** — the full `MigrationReport` (JSON
//!    bytes), the residency map and the exported virtual-clock trace are
//!    identical whether same-instant batches run serially or one thread
//!    per shard, extending the runtime's trace-determinism proptests to
//!    the live path.

use blockpart_ethereum::{ExecutedTx, Receipt, Transaction, TxPayload, TxStatus, World};
use blockpart_live::{LiveConfig, LiveRun, LiveRunner};
use blockpart_obs::perfetto;
use blockpart_partition::{MultilevelConfig, MultilevelPartitioner, Partitioner};
use blockpart_runtime::RuntimeConfig;
use blockpart_shard::RepartitionPolicy;
use blockpart_types::{Address, Duration, Gas, ShardCount, Timestamp, Wei};
use proptest::collection::vec;
use proptest::prelude::*;

fn transfer(from: Address, to: Address, secs: u64) -> ExecutedTx {
    let tx = Transaction {
        from,
        to,
        value: Wei::new(1),
        gas_limit: Gas::new(30_000),
        payload: TxPayload::Transfer,
    };
    let receipt = Receipt {
        status: TxStatus::Success,
        gas_used: Gas::new(21_000),
        calls: Vec::new(),
        created: Vec::new(),
    };
    ExecutedTx::new(Timestamp::from_secs(secs), tx, &receipt)
}

/// A drifting-community workload: `users` accounts in two communities,
/// transacting mostly internally; `pairs` adds randomized cross-talk so
/// the windowed graph and the trigger see varied shapes.
fn workload(users: usize, hours: u64, pairs: &[(u64, u64)]) -> (World, Vec<ExecutedTx>) {
    let mut world = World::new();
    let addrs: Vec<Address> = (0..users)
        .map(|_| world.new_user(Wei::new(10_000)))
        .collect();
    let half = users / 2;
    let mut txs = Vec::new();
    for h in 0..hours {
        for m in 0..6u64 {
            let t = h * 3_600 + m * 600;
            let i = (h + m) as usize;
            // intra-community ring traffic
            txs.push(transfer(addrs[i % half], addrs[(i + 1) % half], t));
            txs.push(transfer(
                addrs[half + i % (users - half)],
                addrs[half + (i + 1) % (users - half)],
                t + 60,
            ));
            // randomized cross-talk
            if let Some(&(f, to)) = pairs.get(((h * 6 + m) as usize) % pairs.len().max(1)) {
                txs.push(transfer(
                    addrs[(f as usize) % users],
                    addrs[(to as usize) % users],
                    t + 120,
                ));
            }
        }
    }
    (world, txs)
}

fn config(k: u16, policy: RepartitionPolicy, threshold: usize, traced: bool) -> LiveConfig {
    let k = ShardCount::new(k).unwrap();
    LiveConfig::new(k)
        .with_window(Duration::hours(1))
        .with_depth(3)
        .with_policy(policy)
        .with_runtime(
            RuntimeConfig::new(k)
                .with_inter_arrival_us(200)
                .with_parallel_batch_threshold(threshold),
        )
        .with_tracing(traced)
}

fn metis(seed: u64) -> Box<dyn Partitioner> {
    Box::new(MultilevelPartitioner::new(MultilevelConfig {
        seed,
        ..MultilevelConfig::default()
    }))
}

fn threshold_policy() -> RepartitionPolicy {
    RepartitionPolicy::Threshold {
        edge_cut: 0.3,
        balance: 2.5,
        min_interval: Duration::hours(1),
    }
}

fn run(world: &World, txs: &[ExecutedTx], cfg: LiveConfig, seed: u64) -> LiveRun {
    LiveRunner::new(cfg, metis(seed)).run(world, txs)
}

/// Sorted `(address, balance)` across all shard worlds.
fn balances(run: &LiveRun) -> Vec<(Address, u64)> {
    let mut out: Vec<(Address, u64)> = run
        .session
        .worlds()
        .flat_map(|(_, w)| {
            w.addresses()
                .map(|a| (a, w.balance(a).get()))
                .collect::<Vec<_>>()
        })
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn migration_conserves_state_and_matches_no_migration_run(
        k in 2u16..=4,
        users in 6usize..12,
        hours in 4u64..8,
        pairs in vec((0u64..64, 0u64..64), 1..8),
        seed in 0u64..1_000,
    ) {
        let (world, txs) = workload(users, hours, &pairs);

        let migrated = run(&world, &txs, config(k, threshold_policy(), 32, false), seed);
        prop_assert_eq!(migrated.report.total_committed(), txs.len() as u64);
        prop_assert_eq!(migrated.report.total_failed(), 0);

        // every account on exactly one shard
        let resident = migrated.session.resident_addresses();
        prop_assert_eq!(resident.len(), users);
        let mut addrs: Vec<Address> = resident.iter().map(|&(a, _)| a).collect();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), users);

        // migrations moved what they claim
        let moved: u64 = migrated.report.episodes.iter().map(|e| e.stats.accounts).sum();
        prop_assert_eq!(moved, migrated.report.accounts_moved());

        // world state equals the run that never migrates
        let frozen = run(&world, &txs, config(k, RepartitionPolicy::Never, 32, false), seed);
        prop_assert_eq!(frozen.report.migrations(), 0);
        prop_assert_eq!(balances(&migrated), balances(&frozen));
    }

    #[test]
    fn live_report_identical_across_worker_counts(
        k in 2u16..=4,
        users in 6usize..10,
        hours in 4u64..7,
        pairs in vec((0u64..64, 0u64..64), 1..6),
        seed in 0u64..1_000,
    ) {
        let (world, txs) = workload(users, hours, &pairs);
        // usize::MAX: every batch below threshold → one serial worker.
        let serial = run(&world, &txs, config(k, threshold_policy(), usize::MAX, true), seed);
        // 0: every multi-shard batch fans out to one thread per shard.
        let parallel = run(&world, &txs, config(k, threshold_policy(), 0, true), seed);

        prop_assert_eq!(&serial.report, &parallel.report);
        prop_assert_eq!(serial.report.json().render(), parallel.report.json().render());
        prop_assert_eq!(
            serial.session.resident_addresses(),
            parallel.session.resident_addresses()
        );
        prop_assert_eq!(
            perfetto::to_perfetto(&serial.session.finish()).render(),
            perfetto::to_perfetto(&parallel.session.finish()).render()
        );
    }
}
