//! The measured-speed harness behind the `perf` binary.
//!
//! Runs a fixed, seeded workload matrix — chain generation → graph build
//! → CSR symmetrization → HASH/METIS/R-METIS partitioning → offline
//! simulation → 2PC replay → live repartitioning — timing every stage
//! with warmup plus repeated trials, and renders the medians as a
//! stable-schema `BENCH.json` document (see [`SCHEMA`]). A committed
//! baseline plus [`compare`] turns the harness into a CI regression
//! gate.
//!
//! The `live` stage times the online repartitioning service end to end
//! (host wall-clock, calibrated like any other stage) and additionally
//! records two virtual-clock quantities from its deterministic report —
//! `live-migration-vclock` (total migration wall-clock inside the
//! simulated timeline) and `live-during-p99-vclock` (worst p99 commit
//! latency while a migration was in flight). Virtual-clock rows are
//! bit-stable for a given seed, so the gate catches behavioral drift in
//! the migration path, not timer noise; [`compare_calibrated`] leaves
//! them unscaled (see [`is_virtual_stage`]).
//!
//! The hot stages are measured twice, once pinned to one worker and once
//! at the configured worker count, so the parallel speedup is part of
//! the recorded data (`graph-build-serial` vs `graph-build`, `csr-serial`
//! vs `csr`, `kway-serial` vs `kway`). All parallel paths are
//! deterministic in their worker count, so the two rows of each pair
//! time *the same computation*.
//!
//! The `scenario-*` stages score hostile workloads from the
//! [`ScenarioRegistry`] (see
//! [`SCENARIOS`]): generation cost, TR-METIS offline simulation, and —
//! from a single deterministic live run — `scenario-live-migration-vclock`
//! and `scenario-live-during-p99-vclock` rows that gate the migration
//! path's behavior under adversarial traffic, calibration-exempt like
//! every virtual-clock row.
//!
//! The `oocsr-build` and `oocsr-stream-partition` stages time the
//! out-of-core data path (`blockpart-storage` + `graph::ooc`): the
//! external-memory CSR build under [`OOCSR_MEM_BUDGET`] — a budget
//! deliberately far below the resident edge accumulation, the
//! scaled-down analogue of running paper scale under a 512 MiB cap —
//! and the LDG/Fennel streaming partitioners consuming the merged row
//! stream straight from disk. Every stage row additionally records
//! [`peak_rss_bytes`], the process's resident high-water mark when the
//! row was pushed, so out-of-core wins are recorded data rather than
//! anecdote.

use std::time::Instant;

use blockpart_core::{ScenarioRegistry, StrategyRegistry};
use blockpart_ethereum::evm::{ExecContext, GasSchedule};
use blockpart_ethereum::exec::ExecRequest;
use blockpart_ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart_ethereum::{ExecutionEngine, ParallelEngine, SerialEngine, SyntheticChain};
use blockpart_graph::{InteractionLog, OocCsr};
use blockpart_live::{LiveConfig, LiveRunner};
use blockpart_metrics::Json;
use blockpart_partition::{kway, Fennel, LinearGreedy, MultilevelConfig, PartitionRequest};
use blockpart_runtime::{Assignment, ShardedRuntime};
use blockpart_shard::ShardSimulator;
use blockpart_types::{resolve_workers, Duration, ShardCount};

/// Schema identifier stamped into every `BENCH.json`.
pub const SCHEMA: &str = "blockpart.bench/1";

/// The strategies the workload matrix sweeps.
pub const STRATEGIES: [&str; 3] = ["hash", "metis", "r-metis"];

/// The adversarial scenarios scored by the `scenario-*` stages.
pub const SCENARIOS: [&str; 2] = ["hub-burst", "dummy-spam"];

/// Transactions in the block timed by the `exec-serial`/`exec-parallel`
/// engine stages — one block large enough to amortize lane startup, kept
/// constant across scales so the row pair stays comparable.
pub const EXEC_BLOCK_TXS: usize = 2_000;

/// Edge-accumulation budget for the `oocsr-*` stages, in bytes. Far
/// below the resident edge set at every configured scale — the
/// accumulator overflows into multiple sorted on-disk runs even at the
/// CI workload, so the rows time the genuine external sort/merge path
/// (the scaled-down analogue of paper scale against a 512 MiB budget).
pub const OOCSR_MEM_BUDGET: u64 = 256 * 1024;

/// The process's peak resident set size in bytes — `VmHWM` from
/// `/proc/self/status` — or `0` on platforms without procfs. The kernel
/// reports a process-lifetime high-water mark, so a stage row records
/// the peak *up to the moment it was pushed*; the `ooc-smoke` CI job,
/// which runs the spilled pipeline in a fresh memory-capped process, is
/// where the out-of-core ceiling becomes a gated number.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        status
            .lines()
            .find_map(|line| line.strip_prefix("VmHWM:"))
            .and_then(|rest| {
                rest.trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .ok()
            })
            .map_or(0, |kb| kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Harness configuration: workload scale and timing discipline.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfConfig {
    /// Generator scale (fraction of the full transaction rate), as the
    /// `fig*` binaries' `BLOCKPART_SCALE`.
    pub scale: f64,
    /// Generator and partitioner seed.
    pub seed: u64,
    /// Timed trials per stage; the reported time is their median.
    pub trials: usize,
    /// Untimed warmup runs per stage.
    pub warmup: usize,
    /// Shard counts swept by the per-strategy stages.
    pub shard_counts: Vec<u16>,
    /// Worker threads for the parallel stages (`0` = automatic).
    pub workers: usize,
    /// Whether this is the reduced CI profile.
    pub quick: bool,
}

impl PerfConfig {
    /// The full profile: fig1-scale workload, five trials.
    pub fn full() -> Self {
        PerfConfig {
            scale: 0.0012,
            seed: 42,
            trials: 5,
            warmup: 1,
            shard_counts: vec![2, 4, 8],
            workers: 0,
            quick: false,
        }
    }

    /// The `--quick` CI profile: smaller workload, three trials, k = 2.
    pub fn quick() -> Self {
        PerfConfig {
            scale: 0.0004,
            seed: 42,
            trials: 3,
            warmup: 1,
            shard_counts: vec![2],
            workers: 0,
            quick: true,
        }
    }
}

/// One timed stage of the matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct StageResult {
    /// Stage name (`chain-gen`, `graph-build`, `partition`, …).
    pub stage: String,
    /// Strategy swept, for the per-strategy stages.
    pub strategy: Option<String>,
    /// Shard count swept, for the per-strategy stages.
    pub k: Option<u16>,
    /// Median wall-clock over the timed trials, in milliseconds.
    pub median_ms: f64,
    /// Items processed per second (transactions, interactions or
    /// vertices, depending on the stage), when the stage has a natural
    /// throughput unit.
    pub txs_per_sec: Option<f64>,
    /// Process peak RSS in bytes when the row was recorded
    /// ([`peak_rss_bytes`]; `0` where unavailable). Additive within
    /// schema 1: documents written before the field parse as `0`.
    pub peak_rss_bytes: u64,
}

impl StageResult {
    /// The `(stage, strategy, k)` identity used to match rows across
    /// reports.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.stage,
            self.strategy.as_deref().unwrap_or("-"),
            self.k.map_or_else(|| "-".to_string(), |k| k.to_string()),
        )
    }
}

/// A completed harness run.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// The configuration the run used.
    pub config: PerfConfig,
    /// The worker count the parallel stages actually ran with.
    pub workers_resolved: usize,
    /// All stage timings, in matrix order.
    pub stages: Vec<StageResult>,
}

impl PerfReport {
    /// Looks up a stage row by identity.
    pub fn find(
        &self,
        stage: &str,
        strategy: Option<&str>,
        k: Option<u16>,
    ) -> Option<&StageResult> {
        self.stages
            .iter()
            .find(|s| s.stage == stage && s.strategy.as_deref() == strategy && s.k == k)
    }

    /// The parallel speedup of a serial/parallel stage pair, when both
    /// rows exist (`> 1` means the parallel row was faster).
    pub fn speedup(&self, stage: &str, strategy: Option<&str>, k: Option<u16>) -> Option<f64> {
        let serial = self.find(&format!("{stage}-serial"), strategy, k)?;
        let parallel = self.find(stage, strategy, k)?;
        (parallel.median_ms > 0.0).then(|| serial.median_ms / parallel.median_ms)
    }

    /// Renders the report as the stable `BENCH.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(SCHEMA)),
            ("seed", Json::from(self.config.seed)),
            ("scale", Json::from(self.config.scale)),
            ("quick", Json::from(self.config.quick)),
            ("trials", Json::from(self.config.trials)),
            ("warmup", Json::from(self.config.warmup)),
            ("workers", Json::from(self.workers_resolved)),
            (
                "shard_counts",
                Json::arr(self.config.shard_counts.iter().map(|&k| Json::from(k))),
            ),
            (
                "stages",
                Json::arr(self.stages.iter().map(|s| {
                    Json::obj([
                        ("stage", Json::from(s.stage.as_str())),
                        (
                            "strategy",
                            s.strategy.as_deref().map_or(Json::Null, Json::from),
                        ),
                        ("k", s.k.map_or(Json::Null, Json::from)),
                        ("median_ms", Json::from(s.median_ms)),
                        ("txs_per_sec", s.txs_per_sec.map_or(Json::Null, Json::from)),
                        ("peak_rss_bytes", Json::from(s.peak_rss_bytes)),
                    ])
                })),
            ),
        ])
    }

    /// Parses a `BENCH.json` document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<PerfReport, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
        }
        let f64_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing {name}"))
        };
        let u64_field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing {name}"))
        };
        let shard_counts = doc
            .get("shard_counts")
            .and_then(Json::as_array)
            .ok_or("missing shard_counts")?
            .iter()
            .map(|k| {
                k.as_u64()
                    .and_then(|k| u16::try_from(k).ok())
                    .ok_or("bad shard count".to_string())
            })
            .collect::<Result<Vec<u16>, String>>()?;
        let stages = doc
            .get("stages")
            .and_then(Json::as_array)
            .ok_or("missing stages")?
            .iter()
            .map(|s| {
                Ok(StageResult {
                    stage: s
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or("stage row missing name")?
                        .to_string(),
                    strategy: s.get("strategy").and_then(Json::as_str).map(str::to_string),
                    k: s.get("k")
                        .and_then(Json::as_u64)
                        .and_then(|k| u16::try_from(k).ok()),
                    median_ms: s
                        .get("median_ms")
                        .and_then(Json::as_f64)
                        .ok_or("stage row missing median_ms")?,
                    txs_per_sec: s.get("txs_per_sec").and_then(Json::as_f64),
                    peak_rss_bytes: s.get("peak_rss_bytes").and_then(Json::as_u64).unwrap_or(0),
                })
            })
            .collect::<Result<Vec<StageResult>, String>>()?;
        Ok(PerfReport {
            config: PerfConfig {
                scale: f64_field("scale")?,
                seed: u64_field("seed")?,
                trials: u64_field("trials")? as usize,
                warmup: u64_field("warmup")? as usize,
                shard_counts,
                workers: u64_field("workers")? as usize,
                quick: doc
                    .get("quick")
                    .and_then(Json::as_bool)
                    .ok_or("missing quick")?,
            },
            workers_resolved: u64_field("workers")? as usize,
            stages,
        })
    }
}

/// One stage regression found by [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The stage identity ([`StageResult::key`]).
    pub key: String,
    /// Baseline median, milliseconds.
    pub baseline_ms: f64,
    /// Current median, milliseconds.
    pub current_ms: f64,
    /// `current / baseline` (always `> 1 + tolerance`).
    pub ratio: f64,
}

/// Absolute slack added on top of the relative tolerance when comparing
/// stage medians. Sub-10ms stages jitter by whole milliseconds on busy
/// hosts, which can exceed any reasonable percentage; the floor absorbs
/// that noise while leaving the relative tolerance in charge of every
/// stage large enough to measure reliably.
pub const NOISE_FLOOR_MS: f64 = 15.0;

/// Compares `current` against `baseline`: a stage regresses when its
/// median exceeds the baseline median by more than `tolerance` (`0.25`
/// = 25% slower) plus [`NOISE_FLOOR_MS`]. Returns the regressions plus
/// the baseline stage keys missing from `current` (schema drift also
/// fails the gate).
pub fn compare(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> (Vec<Regression>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.stages {
        let Some(cur) = current.find(&base.stage, base.strategy.as_deref(), base.k) else {
            missing.push(base.key());
            continue;
        };
        if base.median_ms > 0.0
            && cur.median_ms > base.median_ms * (1.0 + tolerance) + NOISE_FLOOR_MS
        {
            regressions.push(Regression {
                key: base.key(),
                baseline_ms: base.median_ms,
                current_ms: cur.median_ms,
                ratio: cur.median_ms / base.median_ms,
            });
        }
    }
    (regressions, missing)
}

/// One `replay`/`replay-obs` pair breaching the instrumentation
/// overhead gate ([`obs_overhead`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ObsOverhead {
    /// The instrumented stage identity ([`StageResult::key`]).
    pub key: String,
    /// Uninstrumented (`replay`) median, milliseconds.
    pub base_ms: f64,
    /// Instrumented (`replay-obs`) median, milliseconds.
    pub obs_ms: f64,
    /// `obs / base` (always `> 1 + max_overhead`).
    pub ratio: f64,
}

/// Checks the instrumentation overhead gate within a single report:
/// every `replay-obs` row is compared against its uninstrumented
/// `replay` twin (same strategy, same k) and breaches the gate when it
/// exceeds `base * (1 + max_overhead) + NOISE_FLOOR_MS`. The same
/// machine and run produce both rows, so no calibration applies.
/// Returns the breaches plus the keys of `replay-obs` rows with no
/// `replay` twin (an unpaired row also fails the gate).
pub fn obs_overhead(report: &PerfReport, max_overhead: f64) -> (Vec<ObsOverhead>, Vec<String>) {
    let mut breaches = Vec::new();
    let mut unpaired = Vec::new();
    for obs in report.stages.iter().filter(|s| s.stage == "replay-obs") {
        let Some(base) = report.find("replay", obs.strategy.as_deref(), obs.k) else {
            unpaired.push(obs.key());
            continue;
        };
        if base.median_ms > 0.0
            && obs.median_ms > base.median_ms * (1.0 + max_overhead) + NOISE_FLOOR_MS
        {
            breaches.push(ObsOverhead {
                key: obs.key(),
                base_ms: base.median_ms,
                obs_ms: obs.median_ms,
                ratio: obs.median_ms / base.median_ms,
            });
        }
    }
    (breaches, unpaired)
}

/// How far machine-speed calibration may rescale a baseline. A CI
/// runner outside this envelope relative to the baseline machine is a
/// setup problem the gate should surface, not silently normalize away.
pub const CALIBRATION_CLAMP: (f64, f64) = (0.25, 4.0);

/// Whether a stage records deterministic *virtual-clock* time (the
/// runtime's simulated timeline) rather than host wall-clock. Virtual
/// rows are bit-stable for a given seed and config, so machine-speed
/// calibration must not rescale them — a change in their value is a
/// behavioral change, not a slower machine.
pub fn is_virtual_stage(stage: &str) -> bool {
    stage.ends_with("-vclock")
}

/// The relative speed of `current`'s machine versus `baseline`'s,
/// probed by the `chain-gen` stage (single-threaded, deterministic
/// work — a pure CPU-speed measurement, independent of worker counts).
/// `2.0` means the current machine took twice as long. Clamped to
/// [`CALIBRATION_CLAMP`]; `None` when either report lacks the stage.
pub fn calibration_factor(current: &PerfReport, baseline: &PerfReport) -> Option<f64> {
    let cur = current.find("chain-gen", None, None)?;
    let base = baseline.find("chain-gen", None, None)?;
    if base.median_ms <= 0.0 || cur.median_ms <= 0.0 {
        return None;
    }
    Some((cur.median_ms / base.median_ms).clamp(CALIBRATION_CLAMP.0, CALIBRATION_CLAMP.1))
}

/// [`compare`] after rescaling the baseline by [`calibration_factor`],
/// so a committed baseline recorded on different hardware still gates on
/// *relative* pipeline shape rather than absolute wall-clock. Returns
/// the factor used (`1.0` when no probe stage is available) alongside
/// the regressions and missing keys. Within the clamp envelope the probe
/// stage rescales to exactly the current measurement and so never
/// regresses — it is the yardstick, not a gated quantity; outside the
/// envelope it regresses like any other stage, flagging the machine
/// mismatch itself. Virtual-clock stages ([`is_virtual_stage`]) are
/// compared unscaled: their values are machine-independent.
pub fn compare_calibrated(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> (f64, Vec<Regression>, Vec<String>) {
    let factor = calibration_factor(current, baseline).unwrap_or(1.0);
    let scaled = PerfReport {
        config: baseline.config.clone(),
        workers_resolved: baseline.workers_resolved,
        stages: baseline
            .stages
            .iter()
            .map(|s| StageResult {
                median_ms: if is_virtual_stage(&s.stage) {
                    s.median_ms
                } else {
                    s.median_ms * factor
                },
                txs_per_sec: s.txs_per_sec,
                peak_rss_bytes: s.peak_rss_bytes,
                stage: s.stage.clone(),
                strategy: s.strategy.clone(),
                k: s.k,
            })
            .collect(),
    };
    let (regressions, missing) = compare(current, &scaled, tolerance);
    (factor, regressions, missing)
}

/// Times `f`: `warmup` untimed runs, then `trials` timed runs. Returns
/// the median milliseconds and the last run's output.
pub fn time_stage<R>(warmup: usize, trials: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let trials = trials.max(1);
    let mut samples = Vec::with_capacity(trials);
    let mut last = None;
    for _ in 0..trials {
        let start = Instant::now();
        last = Some(std::hint::black_box(f()));
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (median(&mut samples), last.expect("at least one trial"))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn throughput(items: usize, ms: f64) -> Option<f64> {
    (ms > 0.0).then(|| items as f64 / (ms / 1e3))
}

/// Runs the full workload matrix under `config`, printing one progress
/// line per stage to stderr.
pub fn run(config: &PerfConfig) -> PerfReport {
    let workers = resolve_workers(config.workers);
    let mut stages: Vec<StageResult> = Vec::new();
    let mut push =
        |stage: &str, strategy: Option<&str>, k: Option<u16>, ms: f64, tps: Option<f64>| {
            eprintln!(
                "# perf: {stage}{}{} {ms:.1} ms",
                strategy.map(|s| format!(" {s}")).unwrap_or_default(),
                k.map(|k| format!(" k={k}")).unwrap_or_default(),
            );
            stages.push(StageResult {
                stage: stage.to_string(),
                strategy: strategy.map(str::to_string),
                k,
                median_ms: ms,
                txs_per_sec: tps,
                peak_rss_bytes: peak_rss_bytes(),
            });
        };

    // ---- chain generation ----------------------------------------------
    let gen_config = GeneratorConfig::demo_scale(config.seed).with_scale(config.scale);
    let (ms, chain): (f64, SyntheticChain) = time_stage(config.warmup, config.trials, || {
        ChainGenerator::new(gen_config.clone()).generate()
    });
    push("chain-gen", None, None, ms, throughput(chain.txs.len(), ms));

    // ---- intra-shard execution engines: serial vs Block-STM ------------
    // The same block of transactions executed through both built-in
    // engines on clones of the generated world. Engines are
    // parity-guaranteed (byte-identical outcomes), so the row pair is a
    // pure scheduler-cost comparison; k=1 marks the rows as single-shard
    // execution outside the 2PC runtime.
    let exec_block: Vec<ExecRequest> = chain
        .txs
        .iter()
        .take(EXEC_BLOCK_TXS)
        .enumerate()
        .map(|(i, rec)| {
            let entropy = (config.seed ^ i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ExecRequest::new(
                rec.tx,
                ExecContext::new(rec.time, entropy, rec.tx.gas_limit)
                    .with_schedule(GasSchedule::eip150()),
            )
        })
        .collect();
    let (ms, _) = time_stage(config.warmup, config.trials, || {
        let mut world = chain.chain.world().clone();
        SerialEngine.execute_block(&mut world, &exec_block)
    });
    push(
        "exec-serial",
        None,
        Some(1),
        ms,
        throughput(exec_block.len(), ms),
    );
    let parallel_engine = ParallelEngine::new();
    let (ms, _) = time_stage(config.warmup, config.trials, || {
        let mut world = chain.chain.world().clone();
        parallel_engine.execute_block(&mut world, &exec_block)
    });
    push(
        "exec-parallel",
        None,
        Some(1),
        ms,
        throughput(exec_block.len(), ms),
    );

    // ---- graph build: serial vs parallel -------------------------------
    let events = chain.log.events();
    let (ms, _) = time_stage(config.warmup, config.trials, || {
        InteractionLog::graph_of_workers(events, 1)
    });
    push(
        "graph-build-serial",
        None,
        None,
        ms,
        throughput(events.len(), ms),
    );
    let (ms, graph) = time_stage(config.warmup, config.trials, || {
        InteractionLog::graph_of_workers(events, workers)
    });
    push("graph-build", None, None, ms, throughput(events.len(), ms));

    // ---- CSR symmetrization: serial vs parallel ------------------------
    let (ms, _) = time_stage(config.warmup, config.trials, || graph.to_csr_workers(1));
    push(
        "csr-serial",
        None,
        None,
        ms,
        throughput(graph.edge_count(), ms),
    );
    let (ms, csr) = time_stage(config.warmup, config.trials, || {
        graph.to_csr_workers(workers)
    });
    push("csr", None, None, ms, throughput(graph.edge_count(), ms));

    // ---- out-of-core CSR build + streaming partitioning ----------------
    // The spill path: symmetrize into budgeted sorted runs on disk, then
    // stream the k-way merge into the LDG/Fennel partitioners without
    // materializing the CSR arrays. OOCSR_MEM_BUDGET keeps the
    // accumulator overflowing at every configured scale, so these rows
    // time genuine external-memory work.
    let spill_root = std::env::temp_dir();
    let (ms, _) = time_stage(config.warmup, config.trials, || {
        let ooc = OocCsr::build(&graph, &spill_root, OOCSR_MEM_BUDGET).expect("out-of-core build");
        ooc.finish().expect("remove spill session");
    });
    push(
        "oocsr-build",
        None,
        None,
        ms,
        throughput(graph.edge_count(), ms),
    );
    let ooc = OocCsr::build(&graph, &spill_root, OOCSR_MEM_BUDGET).expect("out-of-core build");
    for &k in &config.shard_counts {
        let shard_count = ShardCount::new(k).expect("non-zero shard count");
        let (ms, _) = time_stage(config.warmup, config.trials, || {
            LinearGreedy::default()
                .partition_ooc(&ooc, shard_count)
                .expect("stream rows from spill")
        });
        push(
            "oocsr-stream-partition",
            Some("ldg"),
            Some(k),
            ms,
            throughput(ooc.node_count(), ms),
        );
        let (ms, _) = time_stage(config.warmup, config.trials, || {
            Fennel::default()
                .partition_ooc(&ooc, shard_count)
                .expect("stream rows from spill")
        });
        push(
            "oocsr-stream-partition",
            Some("fennel"),
            Some(k),
            ms,
            throughput(ooc.node_count(), ms),
        );
    }
    ooc.finish().expect("remove spill session");

    // ---- multilevel coarsen+partition kernel: serial vs parallel -------
    for &k in &config.shard_counts {
        let shard_count = ShardCount::new(k).expect("non-zero shard count");
        let serial = MultilevelConfig {
            seed: config.seed,
            threads: 1,
            ..MultilevelConfig::default()
        };
        let parallel = MultilevelConfig {
            threads: workers,
            ..serial
        };
        let (ms, _) = time_stage(config.warmup, config.trials, || {
            kway(&csr, shard_count, &serial)
        });
        push(
            "kway-serial",
            Some("metis"),
            Some(k),
            ms,
            throughput(csr.node_count(), ms),
        );
        let (ms, _) = time_stage(config.warmup, config.trials, || {
            kway(&csr, shard_count, &parallel)
        });
        push(
            "kway",
            Some("metis"),
            Some(k),
            ms,
            throughput(csr.node_count(), ms),
        );
    }

    // ---- per-strategy pipeline stages ----------------------------------
    let registry = StrategyRegistry::with_builtins();
    for name in STRATEGIES {
        let spec = registry.resolve(name).expect("built-in strategy resolves");
        for &k in &config.shard_counts {
            let shard_count = ShardCount::new(k).expect("non-zero shard count");

            let (ms, _) = time_stage(config.warmup, config.trials, || {
                let mut partitioner = spec.build_partitioner(config.seed);
                partitioner.partition(&PartitionRequest::new(&csr, shard_count))
            });
            push(
                "partition",
                Some(name),
                Some(k),
                ms,
                throughput(csr.node_count(), ms),
            );

            let (ms, sim) = time_stage(config.warmup, config.trials, || {
                let mut sim = ShardSimulator::new(
                    spec.simulator_config(shard_count),
                    spec.build_partitioner(config.seed),
                );
                sim.run(&chain.log);
                sim
            });
            push(
                "simulate",
                Some(name),
                Some(k),
                ms,
                throughput(chain.log.len(), ms),
            );

            let assignment = Assignment::from_map(sim.into_state().assignment_map(), shard_count);
            let mut runtime_config = spec.runtime_config(shard_count).with_seed(config.seed);
            runtime_config.k = shard_count;
            let runtime = ShardedRuntime::new(runtime_config, assignment);
            let (ms, _) = time_stage(config.warmup, config.trials, || {
                runtime.run(chain.chain.world(), &chain.txs)
            });
            push(
                "replay",
                Some(name),
                Some(k),
                ms,
                throughput(chain.txs.len(), ms),
            );

            // The instrumented twin of the row above: same runtime, same
            // workload, with the always-on observability mode collecting
            // per-shard counters and latency histograms (the O(events)
            // record stream of `--trace` stays opt-in and is not part of
            // the ≤5% envelope). The `replay`/`replay-obs` pair feeds
            // the overhead gate (`obs_overhead`).
            let (ms, _) = time_stage(config.warmup, config.trials, || {
                runtime.run_metered(chain.chain.world(), &chain.txs)
            });
            push(
                "replay-obs",
                Some(name),
                Some(k),
                ms,
                throughput(chain.txs.len(), ms),
            );
        }
    }

    // ---- live repartitioning service -----------------------------------
    // The online path: windowed graph, threshold trigger, staged state
    // migration through the 2PC runtime. Timed end to end, plus the
    // deterministic virtual-clock quantities from the migration report.
    let live_spec = registry
        .resolve("tr-metis")
        .expect("built-in strategy resolves");
    for &k in &config.shard_counts {
        let shard_count = ShardCount::new(k).expect("non-zero shard count");
        let sim_config = live_spec.simulator_config(shard_count);
        let window = Duration::hours(4);
        let depth = (sim_config.scope_window.as_secs() / window.as_secs()).max(1) as usize;
        let mut runtime_config = live_spec.runtime_config(shard_count).with_seed(config.seed);
        runtime_config.k = shard_count;
        let live_config = LiveConfig::new(shard_count)
            .with_window(window)
            .with_depth(depth)
            .with_policy(sim_config.policy)
            .with_runtime(runtime_config)
            .with_label("tr-metis");
        let (ms, live) = time_stage(config.warmup, config.trials, || {
            LiveRunner::new(
                live_config.clone(),
                live_spec.build_partitioner(config.seed),
            )
            .run(chain.chain.world(), &chain.txs)
        });
        push(
            "live",
            Some("tr-metis"),
            Some(k),
            ms,
            throughput(chain.txs.len(), ms),
        );
        push(
            "live-migration-vclock",
            Some("tr-metis"),
            Some(k),
            live.report.migration_wall_us() as f64 / 1e3,
            None,
        );
        push(
            "live-during-p99-vclock",
            Some("tr-metis"),
            Some(k),
            live.report.worst_during_p99_us() as f64 / 1e3,
            None,
        );
    }

    // ---- adversarial scenarios -----------------------------------------
    // Hostile workloads from the scenario registry, scored at the
    // smallest configured shard count: generation cost, TR-METIS offline
    // simulation, and the deterministic virtual-clock quantities of one
    // live run (a single run suffices — the report is bit-stable).
    let scenarios = ScenarioRegistry::with_builtins();
    let k0 = *config
        .shard_counts
        .first()
        .expect("at least one shard count");
    let scenario_k = ShardCount::new(k0).expect("non-zero shard count");
    for name in SCENARIOS {
        let scenario = scenarios.resolve(name).expect("built-in scenario resolves");
        let (ms, hostile) =
            time_stage(config.warmup, config.trials, || scenario.build(&gen_config));
        push(
            "scenario-gen",
            Some(name),
            None,
            ms,
            throughput(hostile.txs.len(), ms),
        );

        let (ms, _) = time_stage(config.warmup, config.trials, || {
            let mut sim = ShardSimulator::new(
                live_spec.simulator_config(scenario_k),
                live_spec.build_partitioner(config.seed),
            );
            sim.run(&hostile.log);
            sim
        });
        push(
            "scenario-sim",
            Some(name),
            Some(k0),
            ms,
            throughput(hostile.log.len(), ms),
        );

        let sim_config = live_spec.simulator_config(scenario_k);
        let window = Duration::hours(4);
        let depth = (sim_config.scope_window.as_secs() / window.as_secs()).max(1) as usize;
        let mut runtime_config = live_spec.runtime_config(scenario_k).with_seed(config.seed);
        runtime_config.k = scenario_k;
        let live_config = LiveConfig::new(scenario_k)
            .with_window(window)
            .with_depth(depth)
            .with_policy(sim_config.policy)
            .with_runtime(runtime_config)
            .with_label("tr-metis");
        let (_, live) = time_stage(0, 1, || {
            LiveRunner::new(
                live_config.clone(),
                live_spec.build_partitioner(config.seed),
            )
            .run(hostile.chain.world(), &hostile.txs)
        });
        push(
            "scenario-live-migration-vclock",
            Some(name),
            Some(k0),
            live.report.migration_wall_us() as f64 / 1e3,
            None,
        );
        push(
            "scenario-live-during-p99-vclock",
            Some(name),
            Some(k0),
            live.report.worst_during_p99_us() as f64 / 1e3,
            None,
        );
    }

    PerfReport {
        config: config.clone(),
        workers_resolved: workers,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(stages: Vec<StageResult>) -> PerfReport {
        // `workers` matches `workers_resolved` because the JSON document
        // records only the resolved count (round-trips normalize `0`).
        PerfReport {
            config: PerfConfig {
                workers: 2,
                ..PerfConfig::quick()
            },
            workers_resolved: 2,
            stages,
        }
    }

    fn stage(stage: &str, strategy: Option<&str>, k: Option<u16>, ms: f64) -> StageResult {
        StageResult {
            stage: stage.to_string(),
            strategy: strategy.map(str::to_string),
            k,
            median_ms: ms,
            txs_per_sec: Some(100.0),
            peak_rss_bytes: 0,
        }
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let report = report_with(vec![
            stage("chain-gen", None, None, 12.5),
            stage("partition", Some("metis"), Some(4), 3.25),
        ]);
        let rendered = report.to_json().render_pretty();
        let parsed = PerfReport::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn schema_fields_are_stable() {
        let json = report_with(vec![stage("csr", None, None, 1.0)])
            .to_json()
            .render();
        for field in [
            "\"schema\":\"blockpart.bench/1\"",
            "\"seed\":42",
            "\"stages\":[",
            "\"stage\":\"csr\"",
            "\"strategy\":null",
            "\"k\":null",
            "\"median_ms\":1.0",
            "\"txs_per_sec\":100.0",
            "\"peak_rss_bytes\":0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable on linux");
        } else {
            assert_eq!(rss, 0);
        }
    }

    #[test]
    fn documents_without_peak_rss_parse_as_zero() {
        // peak_rss_bytes is additive within schema 1: a baseline written
        // before the field must still parse, with the field defaulting
        let mut report = report_with(vec![stage("csr", None, None, 1.0)]);
        report.stages[0].peak_rss_bytes = 4096;
        let stripped = report
            .to_json()
            .render()
            .replace(",\"peak_rss_bytes\":4096", "");
        let parsed = PerfReport::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(parsed.stages[0].peak_rss_bytes, 0);
    }

    #[test]
    fn rejects_wrong_schema() {
        let doc = Json::parse(r#"{"schema": "other/9"}"#).unwrap();
        assert!(PerfReport::from_json(&doc).is_err());
    }

    #[test]
    fn compare_flags_regressions_and_missing() {
        let baseline = report_with(vec![
            stage("chain-gen", None, None, 100.0),
            stage("simulate", Some("hash"), Some(2), 50.0),
            stage("replay", Some("hash"), Some(2), 80.0),
        ]);
        let current = report_with(vec![
            stage("chain-gen", None, None, 110.0),          // +10%: fine
            stage("simulate", Some("hash"), Some(2), 90.0), // +80%: regression
        ]);
        let (regressions, missing) = compare(&current, &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "simulate/hash/2");
        assert!((regressions[0].ratio - 1.8).abs() < 1e-9);
        assert_eq!(missing, vec!["replay/hash/2".to_string()]);
    }

    #[test]
    fn compare_tolerance_boundary() {
        // threshold = baseline * 1.25 + NOISE_FLOOR_MS = 125 + 15 = 140
        let baseline = report_with(vec![stage("csr", None, None, 100.0)]);
        let ok = report_with(vec![stage("csr", None, None, 139.9)]);
        let bad = report_with(vec![stage("csr", None, None, 140.1)]);
        assert!(compare(&ok, &baseline, 0.25).0.is_empty());
        assert_eq!(compare(&bad, &baseline, 0.25).0.len(), 1);
    }

    #[test]
    fn calibration_rescales_cross_machine_baselines() {
        // baseline machine is 2x faster across the board: no regression
        let baseline = report_with(vec![
            stage("chain-gen", None, None, 100.0),
            stage("simulate", Some("metis"), Some(2), 1000.0),
        ]);
        let slower_machine = report_with(vec![
            stage("chain-gen", None, None, 200.0),
            stage("simulate", Some("metis"), Some(2), 2000.0),
        ]);
        let (factor, regressions, missing) = compare_calibrated(&slower_machine, &baseline, 0.25);
        assert!((factor - 2.0).abs() < 1e-9);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert!(missing.is_empty());

        // same machine speed, but the simulate stage genuinely blew up
        let regressed = report_with(vec![
            stage("chain-gen", None, None, 200.0),
            stage("simulate", Some("metis"), Some(2), 3000.0),
        ]);
        let (_, regressions, _) = compare_calibrated(&regressed, &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "simulate/metis/2");
    }

    #[test]
    fn calibration_leaves_virtual_clock_stages_unscaled() {
        // baseline machine is 2x faster, but the virtual-clock row is
        // machine-independent: rescaling it by 0.5 would flag the
        // unchanged deterministic value as a 2x regression
        let baseline = report_with(vec![
            stage("chain-gen", None, None, 200.0),
            stage("live-migration-vclock", Some("tr-metis"), Some(2), 500.0),
        ]);
        let current = report_with(vec![
            stage("chain-gen", None, None, 100.0),
            stage("live-migration-vclock", Some("tr-metis"), Some(2), 500.0),
        ]);
        let (factor, regressions, missing) = compare_calibrated(&current, &baseline, 0.25);
        assert!((factor - 0.5).abs() < 1e-9);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert!(missing.is_empty());

        // a genuine behavioral drift in the virtual quantity still gates
        let drifted = report_with(vec![
            stage("chain-gen", None, None, 100.0),
            stage("live-migration-vclock", Some("tr-metis"), Some(2), 900.0),
        ]);
        let (_, regressions, _) = compare_calibrated(&drifted, &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "live-migration-vclock/tr-metis/2");
    }

    #[test]
    fn calibration_factor_is_clamped() {
        let baseline = report_with(vec![stage("chain-gen", None, None, 100.0)]);
        let wild = report_with(vec![stage("chain-gen", None, None, 10_000.0)]);
        assert_eq!(calibration_factor(&wild, &baseline), Some(4.0));
        let none = report_with(vec![stage("csr", None, None, 1.0)]);
        assert_eq!(calibration_factor(&none, &baseline), None);
    }

    #[test]
    fn compare_noise_floor_absorbs_tiny_stage_jitter() {
        // a 9 ms stage jumping 30% (2.7 ms) is timer noise, not a
        // regression — the absolute floor must absorb it
        let baseline = report_with(vec![stage("csr-serial", None, None, 9.0)]);
        let noisy = report_with(vec![stage("csr-serial", None, None, 11.7)]);
        assert!(compare(&noisy, &baseline, 0.25).0.is_empty());
        // but a genuine blow-up on a tiny stage still fails
        let blown = report_with(vec![stage("csr-serial", None, None, 40.0)]);
        assert_eq!(compare(&blown, &baseline, 0.25).0.len(), 1);
    }

    #[test]
    fn obs_overhead_gates_replay_pairs() {
        // 500 ms base: threshold = 500 * 1.05 + 15 = 540 ms
        let report = report_with(vec![
            stage("replay", Some("hash"), Some(2), 500.0),
            stage("replay-obs", Some("hash"), Some(2), 539.0), // fine
            stage("replay", Some("metis"), Some(2), 500.0),
            stage("replay-obs", Some("metis"), Some(2), 600.0), // breach
            stage("replay-obs", Some("metis"), Some(4), 10.0),  // no twin
        ]);
        let (breaches, unpaired) = obs_overhead(&report, 0.05);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].key, "replay-obs/metis/2");
        assert!((breaches[0].ratio - 1.2).abs() < 1e-9);
        assert_eq!(unpaired, vec!["replay-obs/metis/4".to_string()]);
    }

    #[test]
    fn obs_overhead_noise_floor_absorbs_tiny_replays() {
        // 10 ms replays jitter by milliseconds; a 2x swing at this size
        // is noise, which the absolute floor must absorb
        let report = report_with(vec![
            stage("replay", Some("hash"), Some(2), 10.0),
            stage("replay-obs", Some("hash"), Some(2), 20.0),
        ]);
        assert!(obs_overhead(&report, 0.05).0.is_empty());
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn speedup_reads_stage_pairs() {
        let report = report_with(vec![
            stage("graph-build-serial", None, None, 10.0),
            stage("graph-build", None, None, 4.0),
        ]);
        assert_eq!(report.speedup("graph-build", None, None), Some(2.5));
        assert_eq!(report.speedup("csr", None, None), None);
    }

    #[test]
    fn time_stage_reports_positive_median() {
        let (ms, out) = time_stage(1, 3, || std::hint::black_box((0..10_000u64).sum::<u64>()));
        assert!(ms >= 0.0);
        assert_eq!(out, (0..10_000u64).sum::<u64>());
    }
}
