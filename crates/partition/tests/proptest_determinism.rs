//! Worker-count determinism: the parallel matching, contraction and full
//! multilevel pipeline must produce byte-identical results whether they
//! run on one thread or many.

use blockpart_graph::Csr;
use blockpart_partition::multilevel::coarsen::{contract, contract_workers};
use blockpart_partition::multilevel::matching::{
    match_vertices, match_vertices_workers, MatchingScheme,
};
use blockpart_partition::{kway, MultilevelConfig};
use blockpart_types::ShardCount;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A random connected-ish weighted graph: a spanning path plus extras.
fn graph_strategy() -> impl Strategy<Value = Csr> {
    (8usize..120).prop_flat_map(|n| {
        let extra =
            (0..n as u32, 0..n as u32, 1u64..50).prop_filter("no self-loops", |(u, v, _)| u != v);
        (Just(n), proptest::collection::vec(extra, 0..200)).prop_map(|(n, mut edges)| {
            for v in 1..n as u32 {
                edges.push((v - 1, v, 1 + u64::from(v % 7)));
            }
            Csr::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matching_is_worker_count_invariant(csr in graph_strategy(), workers in 2usize..6) {
        let mut rng1 = SmallRng::seed_from_u64(7);
        let mut rng2 = SmallRng::seed_from_u64(7);
        let serial = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng1);
        let parallel =
            match_vertices_workers(&csr, MatchingScheme::HeavyEdge, &mut rng2, workers);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn contraction_is_worker_count_invariant(csr in graph_strategy(), workers in 2usize..6) {
        let mut rng = SmallRng::seed_from_u64(3);
        let mate = match_vertices(&csr, MatchingScheme::HeavyEdge, &mut rng);
        let (coarse_s, map_s) = contract(&csr, &mate);
        let (coarse_p, map_p) = contract_workers(&csr, &mate, workers);
        prop_assert_eq!(coarse_s, coarse_p);
        prop_assert_eq!(map_s, map_p);
    }

    #[test]
    fn kway_partitions_are_worker_count_invariant(
        csr in graph_strategy(),
        workers in 2usize..6,
        k in 2u16..6,
    ) {
        let serial = MultilevelConfig { threads: 1, ..MultilevelConfig::default() };
        let parallel = MultilevelConfig { threads: workers, ..MultilevelConfig::default() };
        let k = ShardCount::new(k).unwrap();
        prop_assert_eq!(kway(&csr, k, &serial), kway(&csr, k, &parallel));
    }
}
