//! Symmetric compressed-sparse-row graphs — the partitioner input format.

use std::fmt;

use blockpart_types::split_ranges;
use serde::{Deserialize, Serialize};

/// A symmetric (undirected) weighted graph in compressed-sparse-row form.
///
/// This is the classic METIS input format: `xadj` offsets, `adjncy`
/// neighbour lists, `adjwgt` edge weights (each undirected edge appears in
/// both endpoint lists with the same weight) and `vwgt` vertex weights.
/// All partitioning algorithms in `blockpart-partition` consume this type.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
///
/// // A path 0 - 1 - 2 with edge weights 5 and 7.
/// let csr = Csr::from_edges(3, &[(0, 1, 5), (1, 2, 7)]);
/// assert_eq!(csr.degree(1), 2);
/// assert_eq!(csr.total_edge_weight(), 12);
/// assert_eq!(csr.weighted_degree(1), 12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<u64>,
    vwgt: Vec<u64>,
    total_vwgt: u64,
    total_adjwgt: u64,
}

impl Csr {
    /// Builds a CSR from parts. `xadj.len() == vwgt.len() + 1`,
    /// `adjncy.len() == adjwgt.len() == xadj[n]`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the invariants above are violated.
    pub fn from_parts(
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        adjwgt: Vec<u64>,
        vwgt: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(xadj.len(), vwgt.len() + 1);
        debug_assert_eq!(adjncy.len(), adjwgt.len());
        debug_assert_eq!(*xadj.last().unwrap_or(&0), adjncy.len());
        let total_vwgt = vwgt.iter().sum();
        // Each undirected edge appears twice.
        let total_adjwgt: u64 = adjwgt.iter().sum::<u64>() / 2;
        Csr {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
            total_vwgt,
            total_adjwgt,
        }
    }

    /// Builds a CSR with `n` unit-weight vertices from an undirected edge
    /// list `(u, v, weight)`. Duplicate and reversed pairs merge by summing.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or if `u == v` (self-loops are not
    /// representable in the symmetric view).
    pub fn from_edges(n: usize, edges: &[(u32, u32, u64)]) -> Self {
        use std::collections::BTreeMap;
        let mut rows: Vec<BTreeMap<u32, u64>> = vec![BTreeMap::new(); n];
        for &(u, v, w) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "endpoint out of range"
            );
            assert_ne!(u, v, "self-loops are not allowed in a symmetric CSR");
            *rows[u as usize].entry(v).or_insert(0) += w;
            *rows[v as usize].entry(u).or_insert(0) += w;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0);
        for row in rows {
            for (t, w) in row {
                adjncy.push(t);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len());
        }
        Csr::from_parts(xadj, adjncy, adjwgt, vec![1; n])
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vwgt.is_empty()
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vwgt
    }

    /// Sum of all undirected edge weights (each edge counted once).
    pub fn total_edge_weight(&self) -> u64 {
        self.total_adjwgt
    }

    /// The weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vwgt[v]
    }

    /// All vertex weights.
    pub fn vertex_weights(&self) -> &[u64] {
        &self.vwgt
    }

    /// The unweighted degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// The sum of weights of edges incident to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn weighted_degree(&self, v: usize) -> u64 {
        self.adjwgt[self.xadj[v]..self.xadj[v + 1]].iter().sum()
    }

    /// Iterates over `(neighbor, edge_weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.xadj[v];
        let hi = self.xadj[v + 1];
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Iterates over each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| (u as u32) < v)
                .map(move |(v, w)| (u as u32, v, w))
        })
    }

    /// Checks structural invariants: symmetry of adjacency and weights,
    /// sorted neighbour lists, offset monotonicity. Intended for tests and
    /// debug assertions; cost is `O(V + E log d)`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.xadj.len() != n + 1 {
            return Err("xadj length mismatch".into());
        }
        for v in 0..n {
            if self.xadj[v] > self.xadj[v + 1] {
                return Err(format!("xadj not monotone at {v}"));
            }
            let mut prev: Option<u32> = None;
            for (t, w) in self.neighbors(v) {
                if (t as usize) >= n {
                    return Err(format!("neighbor {t} of {v} out of range"));
                }
                if t as usize == v {
                    return Err(format!("self-loop at {v}"));
                }
                if let Some(p) = prev {
                    if t <= p {
                        return Err(format!("unsorted adjacency at {v}"));
                    }
                }
                prev = Some(t);
                // symmetry: the reverse edge must exist with equal weight
                let found = self
                    .neighbors(t as usize)
                    .any(|(b, bw)| b as usize == v && bw == w);
                if !found {
                    return Err(format!("asymmetric edge {v} -> {t}"));
                }
            }
        }
        Ok(())
    }
}

/// Packs a directed edge `(u, v)` into the sort key used by the parallel
/// and out-of-core CSR passes: rows stay contiguous and targets sort
/// within a row. Public so the spill-to-disk builders in
/// [`crate::ooc`] and `blockpart-storage` share the exact key discipline
/// of the in-memory merge.
pub const fn edge_key(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

/// One worker's slice of CSR arrays: per-row lengths, targets, weights.
type CsrSegment = (Vec<usize>, Vec<u32>, Vec<u64>);

/// Merges per-worker sorted edge shards into CSR-shaped arrays.
///
/// Each shard is a list of `(edge_key(u, v), weight)` pairs sorted by key
/// (as produced by draining a per-worker accumulation map and sorting).
/// The output is `(offsets, targets, weights)` where row `u` spans
/// `offsets[u]..offsets[u + 1]`, targets are sorted within each row, and
/// duplicate keys across shards merge by summing their weights.
///
/// The result is a pure function of the *multiset* of `(key, weight)`
/// pairs: how the pairs were distributed over shards — and how rows are
/// distributed over `workers` here — never changes the output. That is
/// the determinism contract behind every parallel graph pass, and it is
/// why the external (spill-to-disk) merge in [`crate::ooc`] produces
/// byte-identical CSR arrays: both are the same pure function of the
/// multiset, evaluated by different schedules.
pub fn merge_sorted_shards(
    n: usize,
    shards: &[Vec<(u64, u64)>],
    workers: usize,
) -> (Vec<usize>, Vec<u32>, Vec<u64>) {
    let ranges = split_ranges(n, workers);
    let mut parts: Vec<Option<CsrSegment>> = Vec::new();
    parts.resize_with(ranges.len(), || None);
    if ranges.len() <= 1 {
        for (slot, range) in parts.iter_mut().zip(&ranges) {
            *slot = Some(merge_row_range(shards, range.clone()));
        }
    } else {
        crossbeam::thread::scope(|scope| {
            for (slot, range) in parts.iter_mut().zip(&ranges) {
                let range = range.clone();
                scope.spawn(move |_| *slot = Some(merge_row_range(shards, range)));
            }
        })
        .expect("csr merge worker panicked");
    }

    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let parts: Vec<_> = parts
        .into_iter()
        .map(|p| p.expect("range merged"))
        .collect();
    let total: usize = parts.iter().map(|(_, t, _)| t.len()).sum();
    let mut targets = Vec::with_capacity(total);
    let mut weights = Vec::with_capacity(total);
    for (lens, t, w) in parts {
        let mut at = *offsets.last().expect("offsets start non-empty");
        for len in lens {
            at += len;
            offsets.push(at);
        }
        targets.extend_from_slice(&t);
        weights.extend_from_slice(&w);
    }
    (offsets, targets, weights)
}

/// Merges the rows `range` out of every shard: a scatter-free k-way merge
/// that concatenates the shards' row slices, sorts, and sums duplicates.
fn merge_row_range(shards: &[Vec<(u64, u64)>], range: std::ops::Range<usize>) -> CsrSegment {
    let lo_key = (range.start as u64) << 32;
    let hi_key = (range.end as u64) << 32;
    let mut scratch: Vec<(u64, u64)> = Vec::new();
    for shard in shards {
        let lo = shard.partition_point(|&(k, _)| k < lo_key);
        let hi = shard.partition_point(|&(k, _)| k < hi_key);
        scratch.extend_from_slice(&shard[lo..hi]);
    }
    scratch.sort_unstable_by_key(|&(k, _)| k);
    let mut lens = vec![0usize; range.len()];
    let mut targets = Vec::with_capacity(scratch.len());
    let mut weights = Vec::with_capacity(scratch.len());
    let mut i = 0;
    while i < scratch.len() {
        let (k, mut w) = scratch[i];
        i += 1;
        while i < scratch.len() && scratch[i].0 == k {
            w += scratch[i].1;
            i += 1;
        }
        lens[(k >> 32) as usize - range.start] += 1;
        targets.push(k as u32);
        weights.push(w);
    }
    (lens, targets, weights)
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "csr({} nodes, {} edges, vwgt {}, ewgt {})",
            self.node_count(),
            self.edge_count(),
            self.total_vwgt,
            self.total_adjwgt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_path() {
        let csr = Csr::from_edges(3, &[(0, 1, 5), (1, 2, 7)]);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(csr.total_edge_weight(), 12);
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(1), 2);
        csr.validate().unwrap();
    }

    #[test]
    fn duplicate_edges_merge() {
        let csr = Csr::from_edges(2, &[(0, 1, 1), (1, 0, 2)]);
        assert_eq!(csr.edge_count(), 1);
        assert_eq!(csr.total_edge_weight(), 3);
        csr.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = Csr::from_edges(2, &[(0, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Csr::from_edges(2, &[(0, 5, 1)]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let csr = Csr::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 4)]);
        let edges: Vec<_> = csr.edges().collect();
        assert_eq!(edges.len(), 4);
        let total: u64 = edges.iter().map(|&(_, _, w)| w).sum();
        assert_eq!(total, csr.total_edge_weight());
        for &(u, v, _) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert!(csr.is_empty());
        assert_eq!(csr.edge_count(), 0);
        csr.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_allowed() {
        let csr = Csr::from_edges(5, &[(0, 1, 1)]);
        assert_eq!(csr.degree(4), 0);
        assert_eq!(csr.weighted_degree(4), 0);
        csr.validate().unwrap();
    }

    #[test]
    fn display_nonempty() {
        assert!(!Csr::from_edges(1, &[]).to_string().is_empty());
    }
}
