/root/repo/target/debug/deps/blockpart_runtime-e8c085efda4ec152.d: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

/root/repo/target/debug/deps/blockpart_runtime-e8c085efda4ec152: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs

crates/runtime/src/lib.rs:
crates/runtime/src/clock.rs:
crates/runtime/src/coordinator.rs:
crates/runtime/src/event.rs:
crates/runtime/src/locks.rs:
crates/runtime/src/net.rs:
crates/runtime/src/report.rs:
crates/runtime/src/shard_worker.rs:
