/root/repo/target/debug/deps/blockpart-174e43136d11e6d5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart-174e43136d11e6d5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
