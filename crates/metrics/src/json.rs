//! A minimal JSON document builder.
//!
//! The workspace builds fully offline, so `serde` is a no-op shim (see
//! `third_party/README.md`) and no `serde_json` exists. Reports that want
//! a machine-readable form build a [`Json`] tree by hand and render it;
//! the output is plain RFC 8259 JSON suitable for `jq` and CI diffing.
//!
//! # Examples
//!
//! ```
//! use blockpart_metrics::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("HASH")),
//!     ("k", Json::from(2u64)),
//!     ("cut", Json::from(0.5f64)),
//! ]);
//! assert_eq!(doc.render(), r#"{"name":"HASH","k":2,"cut":0.5}"#);
//! ```

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, rendered exactly.
    Int(i64),
    /// An unsigned integer, rendered exactly (no f64 precision loss).
    UInt(u64),
    /// A float. Non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human/diff-friendly JSON with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let newline = |out: &mut String, depth: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(f) if !f.is_finite() => out.push_str("null"),
            Json::Num(f) => {
                // Rust's shortest round-trip float formatting is valid
                // JSON except for integral values ("1" needs no ".0", but
                // emit it so consumers see a float-typed field)
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, depth + 1);
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(0.5).render(), "0.5");
        assert_eq!(Json::from(3.0).render(), "3.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn large_u64_is_exact() {
        let v = u64::MAX;
        assert_eq!(Json::from(v).render(), v.to_string());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structure() {
        let doc = Json::obj([
            ("xs", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::arr([])),
            ("o", Json::obj::<&str>([])),
        ]);
        assert_eq!(doc.render(), r#"{"xs":[1,2],"empty":[],"o":{}}"#);
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let doc = Json::obj([("a", Json::arr([Json::from(1u64)]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        // compact and pretty carry the same tokens
        let strip = |s: &str| s.replace([' ', '\n'], "");
        assert_eq!(strip(&pretty), strip(&doc.render()));
    }
}
