/root/repo/target/release/deps/blockpart_shard-80b48431dd502545.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/release/deps/libblockpart_shard-80b48431dd502545.rlib: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/release/deps/libblockpart_shard-80b48431dd502545.rmeta: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
