/root/repo/target/debug/deps/extensions-f9b97dcdaa34b6f4.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-f9b97dcdaa34b6f4.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
