/root/repo/target/debug/deps/figures-3c7998aa2369ff30.d: tests/figures.rs

/root/repo/target/debug/deps/figures-3c7998aa2369ff30: tests/figures.rs

tests/figures.rs:
