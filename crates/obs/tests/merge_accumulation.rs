//! Accumulation semantics of [`Trace::merge`], exercised the way the
//! live repartitioning session uses them: one long-lived session trace
//! absorbs a per-segment trace after every window, across many windows,
//! and the result must behave as if the whole run had been recorded
//! into a single trace — records concatenate, counters *sum*, and
//! latency histograms merge bin-wise. A merge that overwrote instead of
//! accumulated would silently halve the live path's commit counts and
//! corrupt its before/during/after latency percentiles.

use blockpart_obs::{Collector, Record, Trace};

/// One window's worth of worker activity: a span per transaction, a
/// `commits` counter increment and a latency observation each.
fn segment(window: usize, txs: u64) -> Trace {
    let mut t = Trace::new_virtual();
    t.set_lane(0, window as u32);
    for i in 0..txs {
        let ts = (window as u64) * 1_000 + i * 10;
        t.record(Record::span(ts, 5, "tx", format!("w{window}-tx{i}")));
        t.add("commits", 1);
        t.observe_us("commit_latency_us", 100 + i);
    }
    t
}

#[test]
fn repeated_merges_accumulate_like_one_recording() {
    let windows: Vec<u64> = vec![3, 5, 2, 7];

    // the live-session shape: merge one segment trace per window
    let mut session = Trace::new_virtual();
    for (w, &txs) in windows.iter().enumerate() {
        session.merge(segment(w, txs));
    }

    let total: u64 = windows.iter().sum();
    assert_eq!(session.records().len(), total as usize);
    assert_eq!(session.metrics().counter("commits"), total);
    let hist = session
        .metrics()
        .histogram("commit_latency_us")
        .expect("histogram survives merging");
    assert_eq!(hist.count(), total);

    // equivalent single recording
    let mut single = Trace::new_virtual();
    for (w, &txs) in windows.iter().enumerate() {
        for i in 0..txs {
            let ts = (w as u64) * 1_000 + i * 10;
            single.record(Record::span(ts, 5, "tx", format!("w{w}-tx{i}")));
            single.add("commits", 1);
            single.observe_us("commit_latency_us", 100 + i);
        }
    }
    assert_eq!(
        session.metrics().counter("commits"),
        single.metrics().counter("commits")
    );
    assert_eq!(
        session.metrics().render_text(),
        single.metrics().render_text()
    );
}

#[test]
fn merge_then_sort_is_deterministic_in_shard_order() {
    // two workers emit records at the *same* virtual instant; merging in
    // shard order and stable-sorting must yield the same sequence no
    // matter how the workers ran
    let make = |name: &str, thread: u32| {
        let mut t = Trace::new_virtual();
        t.set_lane(0, thread);
        t.record(Record::instant(500, "barrier", name.to_string()));
        t
    };
    let mut a = Trace::new_virtual();
    a.merge(make("shard-0", 0));
    a.merge(make("shard-1", 1));
    a.sort_by_time();

    let mut b = Trace::new_virtual();
    b.merge(make("shard-0", 0));
    b.merge(make("shard-1", 1));
    b.sort_by_time();

    let names = |t: &Trace| {
        t.records()
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&a), names(&b));
    assert_eq!(
        names(&a),
        vec!["shard-0".to_string(), "shard-1".to_string()]
    );
}

#[test]
fn merging_into_a_disabled_trace_is_a_no_op() {
    let mut off = Trace::disabled();
    off.merge(segment(0, 4));
    assert!(off.records().is_empty());
    assert_eq!(off.metrics().counter("commits"), 0);
}
