/root/repo/target/debug/deps/properties-393ae030c070e488.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-393ae030c070e488.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
