//! Out-of-core (spill-to-disk) graph and CSR construction.
//!
//! The in-memory builders ([`crate::GraphBuilder`] and the sharded
//! parallel path behind [`InteractionLog::graph_of`](crate::InteractionLog::graph_of)) hold the full edge
//! accumulation resident, which caps experiments far below the paper's
//! 30-month Ethereum history. This module provides the same builds under
//! a memory budget:
//!
//! 1. **Budgeted accumulation.** Edge contributions land in a hash map
//!    charged against `mem_budget_bytes`; when it fills, the map drains
//!    into a *sorted run* of `(edge_key, weight)` pairs on disk.
//! 2. **External merge.** Runs are k-way merged back in key order,
//!    summing duplicates — the same pure-function-of-the-multiset
//!    discipline as [`crate::csr::merge_sorted_shards`], evaluated by a
//!    streaming schedule instead of a parallel one.
//! 3. **Streamed row assembly.** The merged stream arrives row-major, so
//!    CSR arrays are assembled in one pass — or handed to a consumer one
//!    row at a time ([`CsrRowStream`]) without materializing the arrays
//!    at all (the streaming partitioners use this).
//!
//! **Determinism-in-backend:** wherever both fit, the spill path is
//! byte-identical to the in-memory path — vertex numbering is global
//! first-appearance order, rows are sorted with duplicates summed, and
//! neither depends on the run split. The existing
//! determinism-in-worker-count guarantee extends across backends.
//!
//! **Memory contract:** the budget bounds the *edge accumulation* only.
//! The address interner, per-vertex arrays (weights, kinds) and the
//! final output (graph or CSR arrays, when materialized) stay resident —
//! they are `O(V)`/`O(E_distinct)` where the accumulation is
//! `O(events)`. Spill directories are per-run unique, removed on
//! success, and kept (with a logged path) on failure.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use blockpart_types::{AccountKind, Address, SpillSession, StorageBackend};

use crate::csr::{edge_key, Csr};
use crate::event::Interaction;
use crate::graph::Graph;
use crate::node::NodeId;

/// Approximate resident bytes charged per edge-accumulator entry (two
/// u64 words plus hash-map overhead). The budget divided by this gives
/// the accumulator's entry capacity.
const EDGE_ENTRY_BYTES: u64 = 48;

/// A budgeted `(edge_key, weight)` accumulator that drains into sorted
/// on-disk runs whenever it reaches its entry capacity.
struct RunSpiller {
    dir: PathBuf,
    budget_entries: usize,
    acc: HashMap<u64, u64>,
    runs: Vec<PathBuf>,
}

impl RunSpiller {
    fn new(dir: &Path, mem_budget_bytes: u64) -> RunSpiller {
        let budget_entries = usize::try_from(mem_budget_bytes / EDGE_ENTRY_BYTES)
            .unwrap_or(usize::MAX)
            .max(1);
        RunSpiller {
            dir: dir.to_path_buf(),
            budget_entries,
            acc: HashMap::new(),
            runs: Vec::new(),
        }
    }

    fn add(&mut self, key: u64, weight: u64) -> io::Result<()> {
        *self.acc.entry(key).or_insert(0) += weight;
        if self.acc.len() >= self.budget_entries {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.acc.is_empty() {
            return Ok(());
        }
        let mut sorted: Vec<(u64, u64)> = self.acc.drain().collect();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        let path = self.dir.join(format!("run-{:06}.bin", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for &(k, v) in &sorted {
            w.write_all(&k.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
        w.into_inner().map_err(io::Error::from)?.sync_data().ok();
        self.runs.push(path);
        Ok(())
    }

    /// Drains the resident tail into a final run and freezes the set.
    fn finish(mut self) -> io::Result<SpilledRuns> {
        self.spill()?;
        Ok(SpilledRuns { runs: self.runs })
    }
}

/// The frozen, re-mergeable sorted runs of one accumulation.
struct SpilledRuns {
    runs: Vec<PathBuf>,
}

impl SpilledRuns {
    /// Opens a fresh merged view of the runs (streamable repeatedly).
    fn stream(&self) -> io::Result<MergeStream> {
        MergeStream::open(&self.runs)
    }
}

/// One run's buffered reader plus its lookahead record.
struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    fn next(&mut self) -> io::Result<Option<(u64, u64)>> {
        let mut buf = [0u8; 16];
        match self.reader.read_exact(&mut buf) {
            Ok(()) => {
                let k = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                let w = u64::from_le_bytes(buf[8..].try_into().expect("8 bytes"));
                Ok(Some((k, w)))
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A k-way merge over sorted runs, summing duplicate keys: yields the
/// exact `(key, weight)` sequence `merge_sorted_shards` would produce
/// from the same multiset, in key order.
struct MergeStream {
    readers: Vec<RunReader>,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
}

impl MergeStream {
    fn open(runs: &[PathBuf]) -> io::Result<MergeStream> {
        let mut readers = Vec::with_capacity(runs.len());
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, path) in runs.iter().enumerate() {
            let mut reader = RunReader {
                reader: BufReader::with_capacity(1 << 16, File::open(path)?),
            };
            if let Some((k, w)) = reader.next()? {
                heap.push(Reverse((k, w, i)));
            }
            readers.push(reader);
        }
        Ok(MergeStream { readers, heap })
    }

    /// The next distinct key with its summed weight, in ascending key
    /// order; `None` when the runs are exhausted.
    fn next_edge(&mut self) -> io::Result<Option<(u64, u64)>> {
        let Some(Reverse((key, mut weight, idx))) = self.heap.pop() else {
            return Ok(None);
        };
        if let Some((k, w)) = self.readers[idx].next()? {
            self.heap.push(Reverse((k, w, idx)));
        }
        while let Some(&Reverse((k, w, i))) = self.heap.peek() {
            if k != key {
                break;
            }
            self.heap.pop();
            weight += w;
            if let Some((nk, nw)) = self.readers[i].next()? {
                self.heap.push(Reverse((nk, nw, i)));
            }
        }
        Ok(Some((key, weight)))
    }
}

/// Assembles CSR-shaped arrays from a merged key-ordered stream:
/// `(offsets, targets, weights)` exactly as
/// [`crate::csr::merge_sorted_shards`] lays them out.
fn assemble(n: usize, stream: &mut MergeStream) -> io::Result<(Vec<usize>, Vec<u32>, Vec<u64>)> {
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    let mut row = 0usize;
    while let Some((key, weight)) = stream.next_edge()? {
        let u = (key >> 32) as usize;
        debug_assert!(u < n, "edge key row out of range");
        while row < u {
            offsets.push(targets.len());
            row += 1;
        }
        targets.push(key as u32);
        weights.push(weight);
    }
    while row < n {
        offsets.push(targets.len());
        row += 1;
    }
    Ok((offsets, targets, weights))
}

/// An incremental, budgeted graph builder fed interaction chunks.
///
/// Produces byte-identical output to [`InteractionLog::graph_of`](crate::InteractionLog::graph_of) over
/// the concatenation of the pushed chunks (see the module docs for the
/// memory contract).
///
/// # Examples
///
/// ```
/// use blockpart_graph::{Interaction, InteractionLog, OocGraphBuilder};
/// use blockpart_types::{Address, StorageBackend, Timestamp};
///
/// let events: Vec<Interaction> = (0..100)
///     .map(|i| Interaction::new(
///         Timestamp::from_secs(i),
///         Address::from_index(i % 7),
///         Address::from_index((i + 1) % 7),
///     ))
///     .collect();
/// let backend = StorageBackend::spill(std::env::temp_dir(), 0); // pathological budget
/// let mut b = OocGraphBuilder::new(&backend).unwrap();
/// b.push_chunk(&events).unwrap();
/// let spilled = b.finish().unwrap();
/// let resident = InteractionLog::graph_of(&events);
/// assert_eq!(spilled.edge_count(), resident.edge_count());
/// assert_eq!(spilled.total_edge_weight(), resident.total_edge_weight());
/// ```
pub struct OocGraphBuilder {
    session: Option<SpillSession>,
    spiller: RunSpiller,
    index: HashMap<Address, NodeId>,
    addresses: Vec<Address>,
    contract: Vec<bool>,
    weights: Vec<u64>,
}

impl OocGraphBuilder {
    /// Opens a builder under `backend`.
    ///
    /// # Panics
    ///
    /// Panics when `backend` is [`StorageBackend::InMemory`] — callers
    /// choose the resident path (`InteractionLog::graph_of`) for that
    /// backend; this type only implements the spill path.
    pub fn new(backend: &StorageBackend) -> io::Result<OocGraphBuilder> {
        let StorageBackend::Spill {
            dir,
            mem_budget_bytes,
        } = backend
        else {
            panic!("OocGraphBuilder requires a spill backend");
        };
        let session = SpillSession::create(dir)?;
        let spiller = RunSpiller::new(session.path(), *mem_budget_bytes);
        Ok(OocGraphBuilder {
            session: Some(session),
            spiller,
            index: HashMap::new(),
            addresses: Vec::new(),
            contract: Vec::new(),
            weights: Vec::new(),
        })
    }

    fn intern(&mut self, address: Address, kind: AccountKind) -> u32 {
        match self.index.entry(address) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let id = e.get().as_u32();
                self.contract[id as usize] |= kind.is_contract();
                id
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let raw =
                    u32::try_from(self.addresses.len()).expect("graph exceeds u32 vertex capacity");
                e.insert(NodeId::new(raw));
                self.addresses.push(address);
                self.contract.push(kind.is_contract());
                self.weights.push(0);
                raw
            }
        }
    }

    /// Appends one interaction.
    pub fn push(&mut self, e: &Interaction) -> io::Result<()> {
        let u = self.intern(e.from, e.from_kind);
        let v = self.intern(e.to, e.to_kind);
        self.weights[u as usize] += e.weight;
        if u == v {
            return Ok(());
        }
        self.weights[v as usize] += e.weight;
        self.spiller.add(edge_key(u, v), e.weight)
    }

    /// Appends a chunk of interactions (e.g. one segment's worth).
    pub fn push_chunk(&mut self, events: &[Interaction]) -> io::Result<()> {
        for e in events {
            self.push(e)?;
        }
        Ok(())
    }

    /// Vertices interned so far.
    pub fn node_count(&self) -> usize {
        self.addresses.len()
    }

    /// Merges the spilled runs and freezes the graph; the spill
    /// directory is removed on success.
    pub fn finish(mut self) -> io::Result<Graph> {
        let n = self.addresses.len();
        let runs = std::mem::replace(&mut self.spiller, RunSpiller::new(Path::new(""), u64::MAX))
            .finish()?;
        let mut stream = runs.stream()?;
        let (offsets, raw_targets, edge_weights) = assemble(n, &mut stream)?;
        drop(stream);
        let kinds: Vec<AccountKind> = self
            .contract
            .iter()
            .map(|&c| {
                if c {
                    AccountKind::Contract
                } else {
                    AccountKind::ExternallyOwned
                }
            })
            .collect();
        let total_edge_weight = edge_weights.iter().sum();
        let targets: Vec<NodeId> = raw_targets.into_iter().map(NodeId::new).collect();
        let graph = Graph::from_parts(
            std::mem::take(&mut self.addresses),
            kinds,
            std::mem::take(&mut self.weights),
            offsets,
            targets,
            edge_weights,
            total_edge_weight,
            std::mem::take(&mut self.index),
        );
        if let Some(session) = self.session.take() {
            session.finish()?;
        }
        Ok(graph)
    }
}

/// A symmetrized CSR accumulated on disk: the spill-backed counterpart
/// of [`Graph::to_csr`], either materialized ([`OocCsr::into_csr`]) or
/// streamed row-by-row ([`OocCsr::rows`]) to a streaming partitioner
/// without ever holding the adjacency arrays resident.
///
/// # Examples
///
/// ```
/// use blockpart_graph::{GraphBuilder, OocCsr};
/// use blockpart_types::Address;
///
/// let mut b = GraphBuilder::new();
/// b.add_interaction(Address::from_index(0), Address::from_index(1), 2);
/// b.add_interaction(Address::from_index(1), Address::from_index(2), 3);
/// let g = b.build();
/// let ooc = OocCsr::build(&g, &std::env::temp_dir(), 1024).unwrap();
/// assert_eq!(ooc.undirected_edge_count(), 2);
/// let csr = ooc.into_csr().unwrap();
/// assert_eq!(csr, g.to_csr());
/// ```
pub struct OocCsr {
    session: Option<SpillSession>,
    runs: SpilledRuns,
    vwgt: Vec<u64>,
    n: usize,
    undirected_edges: usize,
}

impl OocCsr {
    /// Symmetrizes `graph` into budgeted sorted runs under a fresh spill
    /// session in `dir`, then takes one counting pass over the merge so
    /// the edge count is known before any row is consumed (Fennel's α
    /// needs it up front).
    pub fn build(graph: &Graph, dir: &Path, mem_budget_bytes: u64) -> io::Result<OocCsr> {
        let session = SpillSession::create(dir)?;
        let mut spiller = RunSpiller::new(session.path(), mem_budget_bytes);
        for e in graph.edges() {
            let (u, v) = (e.source.as_u32(), e.target.as_u32());
            spiller.add(edge_key(u, v), e.weight)?;
            spiller.add(edge_key(v, u), e.weight)?;
        }
        let runs = spiller.finish()?;
        let mut stream = runs.stream()?;
        let mut directed = 0usize;
        while stream.next_edge()?.is_some() {
            directed += 1;
        }
        let vwgt: Vec<u64> = (0..graph.node_count())
            .map(|i| graph.node_weight(NodeId::new(i as u32)).max(1))
            .collect();
        Ok(OocCsr {
            session: Some(session),
            runs,
            n: graph.node_count(),
            vwgt,
            undirected_edges: directed / 2,
        })
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (each counted once), known before any
    /// row streams.
    pub fn undirected_edge_count(&self) -> usize {
        self.undirected_edges
    }

    /// The vertex weights (resident — `O(V)`, per the memory contract).
    pub fn vertex_weights(&self) -> &[u64] {
        &self.vwgt
    }

    /// Opens a fresh row stream over the merged runs. May be called
    /// repeatedly; each call replays the merge from disk.
    pub fn rows(&self) -> io::Result<CsrRowStream<'_>> {
        Ok(CsrRowStream {
            stream: self.runs.stream()?,
            n: self.n,
            row: 0,
            pending: None,
            _owner: PhantomData,
        })
    }

    /// Materializes the full [`Csr`] — byte-identical to
    /// [`Graph::to_csr`] on the source graph — and removes the spill
    /// session.
    pub fn into_csr(mut self) -> io::Result<Csr> {
        let mut stream = self.runs.stream()?;
        let (xadj, adjncy, adjwgt) = assemble(self.n, &mut stream)?;
        drop(stream);
        let csr = Csr::from_parts(xadj, adjncy, adjwgt, std::mem::take(&mut self.vwgt));
        if let Some(session) = self.session.take() {
            session.finish()?;
        }
        Ok(csr)
    }

    /// Removes the spill session after streaming completed successfully.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(session) = self.session.take() {
            session.finish()?;
        }
        Ok(())
    }
}

impl Drop for OocCsr {
    fn drop(&mut self) {
        // An OocCsr dropped without `finish`/`into_csr` keeps its spill
        // directory (the session logs the path) — failure evidence.
    }
}

/// Streams symmetric CSR rows in vertex order — every `v` in `0..n`,
/// empty rows included — from the external merge, without materializing
/// the adjacency arrays.
pub struct CsrRowStream<'a> {
    stream: MergeStream,
    n: usize,
    row: usize,
    pending: Option<(u64, u64)>,
    _owner: PhantomData<&'a OocCsr>,
}

impl CsrRowStream<'_> {
    /// The next row as sorted `(neighbor, weight)` pairs; `None` after
    /// row `n - 1`.
    pub fn next_row(&mut self) -> io::Result<Option<Vec<(u32, u64)>>> {
        if self.row >= self.n {
            return Ok(None);
        }
        let mut out = Vec::new();
        loop {
            let head = match self.pending.take() {
                Some(h) => Some(h),
                None => self.stream.next_edge()?,
            };
            let Some((key, weight)) = head else { break };
            let u = (key >> 32) as usize;
            if u != self.row {
                self.pending = Some((key, weight));
                break;
            }
            out.push((key as u32, weight));
        }
        self.row += 1;
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InteractionLog;
    use blockpart_types::Timestamp;

    fn events(n: u64, spread: u64) -> Vec<Interaction> {
        (0..n)
            .map(|i| {
                let mut e = Interaction::new(
                    Timestamp::from_secs(i),
                    Address::from_index(i % spread),
                    Address::from_index((i * 7 + 3) % spread),
                );
                e.weight = 1 + i % 5;
                if i % 11 == 0 {
                    e.to_kind = AccountKind::Contract;
                }
                e
            })
            .collect()
    }

    fn spill_backend(budget: u64) -> StorageBackend {
        StorageBackend::spill(
            std::env::temp_dir().join("blockpart-graph-ooc-tests"),
            budget,
        )
    }

    fn build_spilled(events: &[Interaction], budget: u64) -> Graph {
        let mut b = OocGraphBuilder::new(&spill_backend(budget)).unwrap();
        b.push_chunk(events).unwrap();
        b.finish().unwrap()
    }

    fn graphs_equal(a: &Graph, b: &Graph) -> bool {
        a.node_count() == b.node_count()
            && a.edge_count() == b.edge_count()
            && a.total_edge_weight() == b.total_edge_weight()
            && a.nodes().zip(b.nodes()).all(|(x, y)| x == y)
            && a.edges().zip(b.edges()).all(|(x, y)| x == y)
    }

    #[test]
    fn spilled_graph_matches_resident_graph() {
        let evs = events(5_000, 300);
        let resident = InteractionLog::graph_of_workers(&evs, 3);
        for budget in [0u64, 1_000, 1 << 20] {
            let spilled = build_spilled(&evs, budget);
            assert!(graphs_equal(&spilled, &resident), "budget {budget}");
        }
    }

    #[test]
    fn spilled_graph_handles_self_loops_and_kinds() {
        let mut evs = events(200, 10);
        evs.push(Interaction::new(
            Timestamp::from_secs(1_000),
            Address::from_index(3),
            Address::from_index(3),
        ));
        let resident = InteractionLog::graph_of(&evs);
        let spilled = build_spilled(&evs, 64);
        assert!(graphs_equal(&spilled, &resident));
    }

    #[test]
    fn ooc_csr_matches_to_csr() {
        let evs = events(3_000, 150);
        let g = InteractionLog::graph_of(&evs);
        for budget in [0u64, 4_096, 1 << 22] {
            let ooc = OocCsr::build(&g, &std::env::temp_dir(), budget).unwrap();
            assert_eq!(ooc.undirected_edge_count(), g.to_csr().edge_count());
            let csr = ooc.into_csr().unwrap();
            assert_eq!(csr, g.to_csr(), "budget {budget}");
        }
    }

    #[test]
    fn row_stream_replays_and_covers_all_rows() {
        let evs = events(500, 40);
        let g = InteractionLog::graph_of(&evs);
        let csr = g.to_csr();
        let ooc = OocCsr::build(&g, &std::env::temp_dir(), 128).unwrap();
        for _ in 0..2 {
            let mut rows = ooc.rows().unwrap();
            let mut v = 0usize;
            while let Some(row) = rows.next_row().unwrap() {
                let expect: Vec<(u32, u64)> = csr.neighbors(v).collect();
                assert_eq!(row, expect, "row {v}");
                v += 1;
            }
            assert_eq!(v, csr.node_count());
        }
        ooc.finish().unwrap();
    }

    #[test]
    fn empty_input_builds_empty_graph() {
        let g = build_spilled(&[], 0);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn spill_directory_removed_on_success() {
        let root = std::env::temp_dir().join("blockpart-graph-ooc-clean");
        let backend = StorageBackend::spill(&root, 0);
        let mut b = OocGraphBuilder::new(&backend).unwrap();
        b.push_chunk(&events(100, 10)).unwrap();
        let _ = b.finish().unwrap();
        let leftovers = std::fs::read_dir(&root).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftovers, 0, "spill session must clean up after itself");
        let _ = std::fs::remove_dir(&root);
    }
}
