//! `blockpart` — command-line front end for the partitioning study.
//!
//! ```text
//! blockpart generate --scale 0.001 --seed 42 --out trace.txt
//! blockpart study    --scale 0.001 --seed 42 --methods hash,metis --shards 2,8
//! blockpart offline  --scale 0.001 --shards 2     # streaming vs multilevel
//! blockpart runtime  --scale 0.001 --shards 1,2,4 # 2PC execution replay
//! blockpart help
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use blockpart::core::ablation::{offline_partitioner_comparison, offline_table};
use blockpart::core::experiments::{fig5_rows, fig5_table};
use blockpart::core::{runtime_table, Method, RuntimeStudy, Study};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::graph::io::write_trace;
use blockpart::types::ShardCount;

const USAGE: &str = "\
blockpart — blockchain-graph sharding study (Fynn & Pedone, DSN 2018)

USAGE:
    blockpart <command> [--key value ...]

COMMANDS:
    generate   synthesize a 30-month chain and write its trace
               --scale <f64>   rate fraction        (default 0.0012)
               --seed <u64>    generator seed        (default 42)
               --out <path>    trace file            (default trace.txt)
    study      run partitioning methods over a synthetic chain
               --scale, --seed as above
               --methods <m,..>  hash|kl|metis|rmetis|trmetis|all (default all)
               --shards <k,..>   shard counts          (default 2,4,8)
    offline    one-shot partitioner comparison on the final graph
               --scale, --seed as above
               --shards <k>     single shard count     (default 2)
    runtime    execute the chain on each method's assignment through the
               sharded 2PC runtime and report coordination costs
               --scale, --seed as above
               --methods <m,..>  (default hash,metis)
               --shards <k,..>   shard counts           (default 1,2,4)
               --latency-us <n>  one-way net latency    (default 1000)
               --arrival-us <n>  arrival gap / offered load (default 500)
    help       print this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&opts),
        "study" => cmd_study(&opts),
        "offline" => cmd_offline(&opts),
        "runtime" => cmd_runtime(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses `--key value` pairs.
fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, found `{key}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("--{name} requires a value"));
        };
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn scale_of(opts: &HashMap<String, String>) -> Result<f64, String> {
    match opts.get("scale") {
        None => Ok(0.0012),
        Some(s) => s
            .parse::<f64>()
            .ok()
            .filter(|&v| v > 0.0)
            .ok_or_else(|| format!("invalid --scale `{s}`")),
    }
}

fn seed_of(opts: &HashMap<String, String>) -> Result<u64, String> {
    match opts.get("seed") {
        None => Ok(42),
        Some(s) => s.parse().map_err(|_| format!("invalid --seed `{s}`")),
    }
}

fn methods_of(opts: &HashMap<String, String>) -> Result<Vec<Method>, String> {
    let Some(spec) = opts.get("methods") else {
        return Ok(Method::ALL.to_vec());
    };
    if spec == "all" {
        return Ok(Method::ALL.to_vec());
    }
    spec.split(',')
        .map(|name| match name.trim().to_ascii_lowercase().as_str() {
            "hash" => Ok(Method::Hash),
            "kl" => Ok(Method::Kl),
            "metis" => Ok(Method::Metis),
            "rmetis" | "r-metis" | "pmetis" | "p-metis" => Ok(Method::RMetis),
            "trmetis" | "tr-metis" => Ok(Method::TrMetis),
            other => Err(format!("unknown method `{other}`")),
        })
        .collect()
}

fn shards_of(opts: &HashMap<String, String>, default: &[u16]) -> Result<Vec<ShardCount>, String> {
    let spec = match opts.get("shards") {
        None => {
            return default
                .iter()
                .map(|&k| ShardCount::new(k).ok_or_else(|| "zero shard count".to_string()))
                .collect()
        }
        Some(s) => s,
    };
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<u16>()
                .ok()
                .and_then(ShardCount::new)
                .ok_or_else(|| format!("invalid shard count `{s}`"))
        })
        .collect()
}

fn generate(opts: &HashMap<String, String>) -> Result<blockpart::ethereum::SyntheticChain, String> {
    let scale = scale_of(opts)?;
    let seed = seed_of(opts)?;
    eprintln!("generating 30-month history (scale {scale}, seed {seed})...");
    let config = GeneratorConfig::demo_scale(seed).with_scale(scale);
    let chain = ChainGenerator::new(config).generate();
    eprintln!(
        "  {} transactions, {} interactions, {} contracts",
        chain.chain.tx_count(),
        chain.log.len(),
        chain.chain.world().contract_count()
    );
    Ok(chain)
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let chain = generate(opts)?;
    let default_out = "trace.txt".to_string();
    let out = opts.get("out").unwrap_or(&default_out);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_trace(BufWriter::new(file), &chain.log).map_err(|e| format!("write failed: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_study(opts: &HashMap<String, String>) -> Result<(), String> {
    // validate all options before the (expensive) generation
    let methods = methods_of(opts)?;
    let shards = shards_of(opts, &[2, 4, 8])?;
    let chain = generate(opts)?;
    let result = Study::new(&chain.log)
        .methods(methods)
        .shard_counts(shards)
        .seed(seed_of(opts)?)
        .run();
    println!("{}", fig5_table(&fig5_rows(&result)).render_ascii());
    Ok(())
}

fn cmd_offline(opts: &HashMap<String, String>) -> Result<(), String> {
    let chain = generate(opts)?;
    let shards = shards_of(opts, &[2])?;
    let k = *shards.first().ok_or("need one shard count")?;
    let rows = offline_partitioner_comparison(&chain.log, k);
    println!("{}", offline_table(&rows).render_ascii());
    Ok(())
}

fn micros_of(opts: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("invalid --{key} `{s}`")),
    }
}

fn cmd_runtime(opts: &HashMap<String, String>) -> Result<(), String> {
    // validate all options before the (expensive) generation
    let methods = match opts.get("methods") {
        None => vec![Method::Hash, Method::Metis],
        Some(_) => methods_of(opts)?,
    };
    let shards = shards_of(opts, &[1, 2, 4])?;
    let seed = seed_of(opts)?;
    let latency_us = micros_of(opts, "latency-us", 1_000)?;
    let arrival_us = micros_of(opts, "arrival-us", 500)?;
    let chain = generate(opts)?;
    let result = RuntimeStudy::new(&chain)
        .methods(methods.clone())
        .shard_counts(shards.clone())
        .seed(seed)
        .net_latency_us(latency_us)
        .inter_arrival_us(arrival_us)
        .run();
    println!("{}", runtime_table(&result.runs).render_ascii());
    // the headline the study exists to show: a better cut means fewer
    // transactions pay the 2PC coordination tax
    for &k in &shards {
        if k.get() < 2 {
            continue;
        }
        if let (Some(hash), Some(metis)) =
            (result.get(Method::Hash, k), result.get(Method::Metis, k))
        {
            println!(
                "k={}: cross-shard ratio hash {:.1}% vs metis {:.1}%",
                k.get(),
                hash.cross_shard_ratio * 100.0,
                metis.cross_shard_ratio * 100.0
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_options_pairs() {
        let args: Vec<String> = ["--scale", "0.5", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.get("scale").map(String::as_str), Some("0.5"));
        assert_eq!(o.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn parse_options_rejects_bare_values() {
        let args = vec!["oops".to_string()];
        assert!(parse_options(&args).is_err());
        let dangling = vec!["--seed".to_string()];
        assert!(parse_options(&dangling).is_err());
    }

    #[test]
    fn scale_and_seed_defaults() {
        let o = opts(&[]);
        assert_eq!(scale_of(&o).unwrap(), 0.0012);
        assert_eq!(seed_of(&o).unwrap(), 42);
        assert!(scale_of(&opts(&[("scale", "-1")])).is_err());
        assert!(seed_of(&opts(&[("seed", "x")])).is_err());
    }

    #[test]
    fn methods_parsing() {
        assert_eq!(methods_of(&opts(&[])).unwrap().len(), 5);
        let m = methods_of(&opts(&[("methods", "hash,tr-metis")])).unwrap();
        assert_eq!(m, vec![Method::Hash, Method::TrMetis]);
        assert!(methods_of(&opts(&[("methods", "bogus")])).is_err());
    }

    #[test]
    fn shards_parsing() {
        let s = shards_of(&opts(&[("shards", "2, 8")]), &[2]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].get(), 8);
        assert!(shards_of(&opts(&[("shards", "0")]), &[2]).is_err());
        assert_eq!(shards_of(&opts(&[]), &[2, 4]).unwrap().len(), 2);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }
}
