/root/repo/target/debug/deps/serde-1e9065f4bc7d3a7d.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-1e9065f4bc7d3a7d.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
