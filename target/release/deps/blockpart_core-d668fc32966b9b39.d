/root/repo/target/release/deps/blockpart_core-d668fc32966b9b39.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/release/deps/libblockpart_core-d668fc32966b9b39.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/release/deps/libblockpart_core-d668fc32966b9b39.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
