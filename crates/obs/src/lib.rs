//! Deterministic tracing and metrics for the partitioning study.
//!
//! The paper's claims (conf_dsn_FynnP18) are cost claims — cross-shard
//! coordination, abort behaviour, repartitioning expense — and this crate
//! is the substrate that makes those costs visible *inside* a run rather
//! than only as end-of-run aggregates. It is hand-rolled and
//! dependency-free (the workspace builds offline) in the style of
//! `third_party/`.
//!
//! Three pieces:
//!
//! * **Spans and events** — [`Trace`] collects [`Record`]s via the
//!   [`Collector`] trait and the [`span!`]/[`event!`] macros. Records
//!   carry the clock domain they were stamped in: the discrete-event
//!   runtime stamps with its **virtual clock** (via
//!   [`Trace::span_at`]/[`Trace::instant_at`]), so runtime traces are
//!   byte-identical across worker counts and machines; pipeline code
//!   outside the engine stamps with monotonic wall time.
//! * **Metrics** — [`MetricsRegistry`] holds counters, gauges and
//!   µs-latency histograms ([`blockpart_metrics::LogHistogram`] with
//!   percentile queries), name-scoped per shard / strategy / stage by
//!   plain `/`-separated prefixes.
//! * **Exporters** — [`perfetto::to_perfetto`] renders Chrome/Perfetto
//!   `trace_event` JSON (openable at `ui.perfetto.dev`),
//!   [`perfetto::validate`] checks a document against the schema, and
//!   [`MetricsRegistry::render_text`] dumps flat metrics.
//!
//! # Examples
//!
//! ```
//! use blockpart_obs::{event, span, Collector, Trace};
//!
//! let mut obs = Trace::new();
//! let answer = span!(&mut obs, "compute", { 6u64 * 7 });
//! event!(&mut obs, "done", "answer" => answer);
//! obs.add("computations", 1);
//! assert_eq!(answer, 42);
//! assert_eq!(obs.records().len(), 2);
//! let doc = blockpart_obs::perfetto::to_perfetto(&obs);
//! assert!(blockpart_obs::perfetto::validate(&doc).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfetto;
pub mod profile;
mod registry;
mod trace;

pub use registry::MetricsRegistry;
pub use trace::{Arg, ClockDomain, Record, Stopwatch, Trace};

/// The sink side of the instrumentation API.
///
/// Implemented by [`Trace`] (buffering collector) and [`Noop`]
/// (discards everything); instrumented code takes `&mut impl Collector`
/// or is generic over it so the disabled path costs one branch.
pub trait Collector {
    /// Whether records are kept. Instrumented code should gate any
    /// argument formatting on this so disabled runs pay nothing.
    fn enabled(&self) -> bool;

    /// Whether per-event [`Record`]s are kept. Metrics-only collectors
    /// ([`Trace::metrics_only`]) report `enabled()` but not `events()`:
    /// counters and histograms accumulate while the O(events) record
    /// stream — the expensive part — is skipped. Code recording in hot
    /// loops should gate on this, not on `enabled()`.
    fn events(&self) -> bool {
        self.enabled()
    }

    /// Monotonic wall-clock microseconds since this collector's epoch
    /// (0 when disabled or for virtual-clock collectors).
    fn now_us(&self) -> u64;

    /// Stores one record, stamping it with the collector's current lane
    /// and clock domain.
    fn record(&mut self, record: Record);

    /// Increments a counter.
    fn add(&mut self, counter: &str, by: u64);

    /// Sets a gauge.
    fn gauge(&mut self, name: &str, value: f64);

    /// Records one observation into a µs-latency histogram.
    fn observe_us(&mut self, histogram: &str, value_us: u64);
}

/// A collector that discards everything (for uninstrumented runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Collector for Noop {
    fn enabled(&self) -> bool {
        false
    }
    fn now_us(&self) -> u64 {
        0
    }
    fn record(&mut self, _record: Record) {}
    fn add(&mut self, _counter: &str, _by: u64) {}
    fn gauge(&mut self, _name: &str, _value: f64) {}
    fn observe_us(&mut self, _histogram: &str, _value_us: u64) {}
}

/// Times a block with the collector's wall clock and records it as a
/// complete span.
///
/// The block's value is returned. The default category is `"stage"`
/// (what [`profile`] aggregates); pass `cat: "..."` for sub-stage
/// detail spans that should not count towards top-level coverage.
///
/// ```
/// use blockpart_obs::{span, Trace};
///
/// let mut obs = Trace::new();
/// let n = span!(&mut obs, "outer", {
///     span!(&mut obs, cat: "detail", "inner", { 2 + 2 })
/// });
/// assert_eq!(n, 4);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr, $body:expr) => {
        $crate::span!($obs, cat: "stage", $name, $body)
    };
    ($obs:expr, cat: $cat:expr, $name:expr, $body:expr) => {{
        let __obs_start = $crate::Collector::now_us(&*$obs);
        let __obs_out = $body;
        if $crate::Collector::enabled(&*$obs) {
            let __obs_end = $crate::Collector::now_us(&*$obs);
            $crate::Collector::record(
                &mut *$obs,
                $crate::Record::span(
                    __obs_start,
                    __obs_end.saturating_sub(__obs_start),
                    $cat,
                    $name,
                ),
            );
        }
        __obs_out
    }};
}

/// Records an instant event, at the wall clock by default or at an
/// explicit (virtual) timestamp with `@at ts`.
///
/// ```
/// use blockpart_obs::{event, Trace};
///
/// let mut obs = Trace::new_virtual();
/// event!(&mut obs, @at 1500, "2pc.abort", "tx" => 7u64, "cause" => "lock-conflict");
/// assert_eq!(obs.records()[0].ts_us, 1500);
/// ```
#[macro_export]
macro_rules! event {
    ($obs:expr, @at $ts:expr, $name:expr $(, $key:expr => $value:expr)* $(,)?) => {
        if $crate::Collector::enabled(&*$obs) {
            $crate::Collector::record(
                &mut *$obs,
                $crate::Record::instant($ts, "event", $name)
                    $(.with_arg($key, $value))*,
            );
        }
    };
    ($obs:expr, $name:expr $(, $key:expr => $value:expr)* $(,)?) => {
        if $crate::Collector::enabled(&*$obs) {
            let __obs_now = $crate::Collector::now_us(&*$obs);
            $crate::Collector::record(
                &mut *$obs,
                $crate::Record::instant(__obs_now, "event", $name)
                    $(.with_arg($key, $value))*,
            );
        }
    };
}
