/root/repo/target/debug/deps/fig3-b05221c85346518b.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-b05221c85346518b.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
