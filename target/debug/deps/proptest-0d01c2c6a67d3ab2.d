/root/repo/target/debug/deps/proptest-0d01c2c6a67d3ab2.d: third_party/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0d01c2c6a67d3ab2.rmeta: third_party/proptest/src/lib.rs Cargo.toml

third_party/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
