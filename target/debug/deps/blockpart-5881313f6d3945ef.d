/root/repo/target/debug/deps/blockpart-5881313f6d3945ef.d: src/lib.rs

/root/repo/target/debug/deps/blockpart-5881313f6d3945ef: src/lib.rs

src/lib.rs:
