/root/repo/target/debug/deps/blockpart_shard-105e960a693f2196.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/debug/deps/libblockpart_shard-105e960a693f2196.rlib: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

/root/repo/target/debug/deps/libblockpart_shard-105e960a693f2196.rmeta: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
