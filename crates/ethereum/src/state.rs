//! The world state: accounts, contracts, balances and storage.

use std::collections::HashMap;

use blockpart_types::{AccountKind, Address, Wei};
use serde::{Deserialize, Serialize};

use crate::program::{ContractTemplate, Program};

/// The mutable state of one externally-owned account.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountState {
    /// Current balance.
    pub balance: Wei,
    /// Number of transactions sent.
    pub nonce: u64,
}

/// The mutable state of one contract.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContractState {
    /// The archetype this contract was instantiated from.
    pub template: ContractTemplate,
    /// The contract's code.
    pub program: Program,
    /// Key/value storage (the paper's point: moving a contract between
    /// shards relocates all of this).
    pub storage: HashMap<u64, u64>,
    /// Current ether balance.
    pub balance: Wei,
    /// Who created the contract.
    pub creator: Address,
}

impl ContractState {
    /// The number of occupied storage slots — the relocation cost model's
    /// measure of contract state size.
    pub fn storage_size(&self) -> usize {
        self.storage.len()
    }
}

/// A portable snapshot of one address's state — what two-phase commit
/// ships between shards.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressState {
    /// An externally-owned account.
    Account(AccountState),
    /// A contract (code, storage, balance).
    Contract(ContractState),
}

impl AddressState {
    /// Approximate serialized size of the snapshot in bytes — the state
    /// migration cost model's measure of what a shard-to-shard move
    /// ships. An account is its balance and nonce; a contract adds its
    /// code and every occupied storage slot (the paper's point: moving a
    /// contract relocates all of this).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            AddressState::Account(_) => 16,
            AddressState::Contract(c) => {
                16 + c.program.len() as u64 * 8 + c.storage.len() as u64 * 16
            }
        }
    }
}

/// The complete chain state: every account, every contract, plus the
/// address allocator for contract creation.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::{ContractTemplate, World};
/// use blockpart_types::Wei;
///
/// let mut world = World::new();
/// let alice = world.new_user(Wei::new(1_000));
/// let token = world.create_contract(ContractTemplate::Token, alice, 7);
/// assert!(world.is_contract(token));
/// assert_eq!(world.balance(alice), Wei::new(1_000));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct World {
    accounts: HashMap<Address, AccountState>,
    contracts: HashMap<Address, ContractState>,
    next_index: u64,
}

impl World {
    /// Creates an empty world. Address index 0 is reserved for
    /// [`Address::ZERO`].
    pub fn new() -> Self {
        World {
            accounts: HashMap::new(),
            contracts: HashMap::new(),
            next_index: 1,
        }
    }

    /// Allocates a fresh externally-owned account with an initial balance.
    pub fn new_user(&mut self, endowment: Wei) -> Address {
        let address = self.allocate_address();
        self.accounts.insert(
            address,
            AccountState {
                balance: endowment,
                nonce: 0,
            },
        );
        address
    }

    /// Creates a contract of `template` with constructor argument `arg`,
    /// returning its fresh address. The creator is recorded but no edge is
    /// emitted here — that is the VM's job.
    pub fn create_contract(
        &mut self,
        template: ContractTemplate,
        creator: Address,
        arg: u64,
    ) -> Address {
        let address = self.allocate_address();
        let storage = template.initial_storage(arg).into_iter().collect();
        self.contracts.insert(
            address,
            ContractState {
                template,
                program: template.program(),
                storage,
                balance: Wei::ZERO,
                creator,
            },
        );
        address
    }

    /// The kind of `address` (unknown addresses are accounts: Ethereum
    /// lets you transfer to any address).
    pub fn kind(&self, address: Address) -> AccountKind {
        if self.contracts.contains_key(&address) {
            AccountKind::Contract
        } else {
            AccountKind::ExternallyOwned
        }
    }

    /// Returns `true` if `address` holds a contract.
    pub fn is_contract(&self, address: Address) -> bool {
        self.contracts.contains_key(&address)
    }

    /// The balance of any address (zero if never seen).
    pub fn balance(&self, address: Address) -> Wei {
        if let Some(c) = self.contracts.get(&address) {
            c.balance
        } else {
            self.accounts.get(&address).map_or(Wei::ZERO, |a| a.balance)
        }
    }

    /// Moves up to `value` from `from` to `to`, clamped at the sender's
    /// balance (the graph edge exists regardless of how much actually
    /// moved). Returns the amount transferred.
    pub fn transfer(&mut self, from: Address, to: Address, value: Wei) -> Wei {
        let available = self.balance(from);
        let moved = if value > available { available } else { value };
        self.debit(from, moved);
        self.credit(to, moved);
        moved
    }

    /// Adds `value` to an address, creating an account entry if needed.
    pub fn credit(&mut self, address: Address, value: Wei) {
        if let Some(c) = self.contracts.get_mut(&address) {
            c.balance += value;
        } else {
            self.accounts.entry(address).or_default().balance += value;
        }
    }

    fn debit(&mut self, address: Address, value: Wei) {
        if let Some(c) = self.contracts.get_mut(&address) {
            c.balance = c.balance.saturating_sub(value);
        } else if let Some(a) = self.accounts.get_mut(&address) {
            a.balance = a.balance.saturating_sub(value);
        }
    }

    /// Bumps the sender nonce.
    pub fn bump_nonce(&mut self, address: Address) {
        self.accounts.entry(address).or_default().nonce += 1;
    }

    /// Shared view of a contract's state.
    pub fn contract(&self, address: Address) -> Option<&ContractState> {
        self.contracts.get(&address)
    }

    /// Shared view of an externally-owned account's state.
    pub fn account(&self, address: Address) -> Option<&AccountState> {
        self.accounts.get(&address)
    }

    /// Extracts a portable snapshot of one address's state, if the world
    /// knows the address. Used by the sharded runtime to ship state
    /// between shards during two-phase commit.
    pub fn export_state(&self, address: Address) -> Option<AddressState> {
        if let Some(c) = self.contracts.get(&address) {
            Some(AddressState::Contract(c.clone()))
        } else {
            self.accounts
                .get(&address)
                .map(|a| AddressState::Account(*a))
        }
    }

    /// Removes one address's state and returns its snapshot, if the
    /// world held it. The destructive counterpart of
    /// [`export_state`](Self::export_state): a live state migration
    /// exports on the source shard, installs on the destination, and
    /// finally takes the source copy so exactly one shard owns the
    /// address.
    pub fn take_state(&mut self, address: Address) -> Option<AddressState> {
        if let Some(c) = self.contracts.remove(&address) {
            Some(AddressState::Contract(c))
        } else {
            self.accounts.remove(&address).map(AddressState::Account)
        }
    }

    /// Installs (or overwrites) one address's state from a snapshot.
    pub fn install_state(&mut self, address: Address, state: AddressState) {
        match state {
            AddressState::Account(a) => {
                self.contracts.remove(&address);
                self.accounts.insert(address, a);
            }
            AddressState::Contract(c) => {
                self.accounts.remove(&address);
                self.contracts.insert(address, c);
            }
        }
    }

    /// Every address this world holds state for (accounts then
    /// contracts, in no particular order).
    pub fn addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.accounts.keys().chain(self.contracts.keys()).copied()
    }

    /// The next index the address allocator will hand out.
    pub fn address_floor(&self) -> u64 {
        self.next_index
    }

    /// Raises the allocator floor so future allocations start at `floor`.
    /// The sharded runtime uses this to keep per-shard address lanes
    /// disjoint; lowering the floor is a no-op.
    pub fn raise_address_floor(&mut self, floor: u64) {
        self.next_index = self.next_index.max(floor);
    }

    /// Reads a contract storage slot (0 when absent).
    pub fn storage_load(&self, contract: Address, key: u64) -> u64 {
        self.contracts
            .get(&contract)
            .and_then(|c| c.storage.get(&key))
            .copied()
            .unwrap_or(0)
    }

    /// Writes a contract storage slot.
    ///
    /// # Panics
    ///
    /// Panics if `contract` is not a contract — only the VM writes
    /// storage, and it only runs inside contracts.
    pub fn storage_store(&mut self, contract: Address, key: u64, value: u64) {
        self.contracts
            .get_mut(&contract)
            .expect("storage write outside a contract")
            .storage
            .insert(key, value);
    }

    /// Number of accounts ever touched.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Number of contracts created.
    pub fn contract_count(&self) -> usize {
        self.contracts.len()
    }

    /// Iterates over all contract addresses with their storage sizes —
    /// the relocation cost model's input.
    pub fn contract_storage_sizes(&self) -> impl Iterator<Item = (Address, usize)> + '_ {
        self.contracts.iter().map(|(&a, c)| (a, c.storage_size()))
    }

    /// Overwrites one account record without touching the contracts map.
    ///
    /// Unlike [`install_state`](Self::install_state) this does *not*
    /// remove a contract record at the same address: the VM can hold
    /// both (e.g. [`bump_nonce`](Self::bump_nonce) materializes an
    /// account entry even for contract addresses), and the optimistic
    /// execution overlay replays exactly the entries direct execution
    /// would have produced.
    pub(crate) fn set_account_record(&mut self, address: Address, state: AccountState) {
        self.accounts.insert(address, state);
    }

    /// Overwrites one contract record without touching the accounts map.
    /// See [`set_account_record`](Self::set_account_record).
    pub(crate) fn set_contract_record(&mut self, address: Address, state: ContractState) {
        self.contracts.insert(address, state);
    }

    fn allocate_address(&mut self) -> Address {
        let address = Address::from_index(self.next_index);
        self.next_index += 1;
        address
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_get_distinct_addresses() {
        let mut w = World::new();
        let a = w.new_user(Wei::new(10));
        let b = w.new_user(Wei::new(10));
        assert_ne!(a, b);
        assert_eq!(w.account_count(), 2);
    }

    #[test]
    fn transfer_clamps_at_balance() {
        let mut w = World::new();
        let a = w.new_user(Wei::new(5));
        let b = w.new_user(Wei::ZERO);
        let moved = w.transfer(a, b, Wei::new(100));
        assert_eq!(moved, Wei::new(5));
        assert_eq!(w.balance(a), Wei::ZERO);
        assert_eq!(w.balance(b), Wei::new(5));
    }

    #[test]
    fn transfer_to_unknown_address_creates_account() {
        let mut w = World::new();
        let a = w.new_user(Wei::new(5));
        let ghost = Address::from_index(999_999);
        w.transfer(a, ghost, Wei::new(3));
        assert_eq!(w.balance(ghost), Wei::new(3));
    }

    #[test]
    fn contract_creation_sets_template_state() {
        let mut w = World::new();
        let creator = w.new_user(Wei::new(1));
        let c = w.create_contract(ContractTemplate::Crowdsale, creator, 42);
        assert!(w.is_contract(c));
        assert_eq!(w.kind(c), AccountKind::Contract);
        let state = w.contract(c).unwrap();
        assert_eq!(state.template, ContractTemplate::Crowdsale);
        assert_eq!(state.creator, creator);
        assert_eq!(w.storage_load(c, 0), 42);
    }

    #[test]
    fn storage_roundtrip() {
        let mut w = World::new();
        let u = w.new_user(Wei::ZERO);
        let c = w.create_contract(ContractTemplate::Registry, u, 0);
        assert_eq!(w.storage_load(c, 7), 0);
        w.storage_store(c, 7, 99);
        assert_eq!(w.storage_load(c, 7), 99);
        assert_eq!(w.contract(c).unwrap().storage_size(), 1);
    }

    #[test]
    #[should_panic(expected = "storage write outside a contract")]
    fn storage_write_to_account_panics() {
        let mut w = World::new();
        let u = w.new_user(Wei::ZERO);
        w.storage_store(u, 0, 1);
    }

    #[test]
    fn contract_balances_tracked_separately() {
        let mut w = World::new();
        let u = w.new_user(Wei::new(10));
        let c = w.create_contract(ContractTemplate::Game, u, 0);
        w.transfer(u, c, Wei::new(4));
        assert_eq!(w.balance(c), Wei::new(4));
        assert_eq!(w.balance(u), Wei::new(6));
    }

    #[test]
    fn storage_sizes_iterator() {
        let mut w = World::new();
        let u = w.new_user(Wei::ZERO);
        let c = w.create_contract(ContractTemplate::Token, u, 1);
        let sizes: Vec<_> = w.contract_storage_sizes().collect();
        assert_eq!(sizes, vec![(c, 1)]);
    }

    #[test]
    fn take_state_removes_and_roundtrips() {
        let mut w = World::new();
        let u = w.new_user(Wei::new(5));
        let c = w.create_contract(ContractTemplate::Token, u, 1);
        let ua = w.take_state(u).expect("account state");
        assert!(w.account(u).is_none());
        assert!(w.take_state(u).is_none());
        w.install_state(u, ua);
        assert_eq!(w.balance(u), Wei::new(5));
        let cs = w.take_state(c).expect("contract state");
        assert!(!w.is_contract(c));
        w.install_state(c, cs);
        assert!(w.is_contract(c));
    }

    #[test]
    fn approx_bytes_grows_with_contract_state() {
        let mut w = World::new();
        let u = w.new_user(Wei::new(5));
        let c = w.create_contract(ContractTemplate::Token, u, 1);
        let account = w.export_state(u).unwrap();
        let contract = w.export_state(c).unwrap();
        assert_eq!(account.approx_bytes(), 16);
        assert!(contract.approx_bytes() > account.approx_bytes());
        w.storage_store(c, 1234, 1);
        let bigger = w.export_state(c).unwrap();
        assert_eq!(bigger.approx_bytes(), contract.approx_bytes() + 16);
    }
}
