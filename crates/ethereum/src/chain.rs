//! The chain: executes blocks against the world state and emits the
//! interaction log the study consumes.

use blockpart_graph::{Interaction, InteractionLog};
use blockpart_types::{BlockNumber, Gas, Timestamp};
use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockSummary};
use crate::evm::{ExecContext, GasSchedule, Vm};
use crate::state::World;
use crate::transaction::Transaction;

/// One transaction's canonical execution result: the receipt plus the
/// exact read/write address footprint captured by overlay execution.
#[derive(Clone, Debug)]
pub struct TxOutcome {
    /// The execution receipt.
    pub receipt: crate::transaction::Receipt,
    /// Addresses read, ascending, [`Address::ZERO`](blockpart_types::Address::ZERO)-excluded.
    pub reads: Vec<blockpart_types::Address>,
    /// Addresses written, ascending, same conventions.
    pub writes: Vec<blockpart_types::Address>,
}

/// A blockchain: the world state plus executed-block summaries.
///
/// Appending a block executes every transaction through the EVM-lite VM
/// and converts each [`CallRecord`](crate::CallRecord) into an
/// [`Interaction`] on the caller-supplied log — exactly the edge extraction
/// the paper performs on the real chain.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::{Chain, Transaction, TxPayload};
/// use blockpart_graph::InteractionLog;
/// use blockpart_types::{Gas, Timestamp, Wei};
///
/// let mut chain = Chain::new(7);
/// let alice = chain.world_mut().new_user(Wei::new(1_000));
/// let bob = chain.world_mut().new_user(Wei::ZERO);
/// let mut log = InteractionLog::new();
/// let tx = Transaction {
///     from: alice,
///     to: bob,
///     value: Wei::new(5),
///     gas_limit: Gas::new(30_000),
///     payload: TxPayload::Transfer,
/// };
/// let summary = chain.apply_block(Timestamp::from_secs(15), vec![tx], &mut log);
/// assert_eq!(summary.tx_count, 1);
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Chain {
    world: World,
    summaries: Vec<BlockSummary>,
    next_number: BlockNumber,
    entropy_seed: u64,
    gas_schedule: GasSchedule,
}

impl Chain {
    /// Creates an empty chain; `entropy_seed` feeds the deterministic
    /// per-transaction entropy used by the `RAND` opcode. Starts on the
    /// launch-era (frontier) gas schedule; forks switch it via
    /// [`Chain::set_gas_schedule`].
    pub fn new(entropy_seed: u64) -> Self {
        Chain {
            world: World::new(),
            summaries: Vec::new(),
            next_number: BlockNumber::GENESIS,
            entropy_seed,
            gas_schedule: GasSchedule::frontier(),
        }
    }

    /// Switches the gas schedule from the next block on (models a fork
    /// like EIP-150).
    pub fn set_gas_schedule(&mut self, schedule: GasSchedule) {
        self.gas_schedule = schedule;
    }

    /// The gas schedule currently in force.
    pub fn gas_schedule(&self) -> GasSchedule {
        self.gas_schedule
    }

    /// The current world state.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access, for genesis setup and contract wiring.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Number of blocks executed.
    pub fn block_count(&self) -> usize {
        self.summaries.len()
    }

    /// Summaries of all executed blocks.
    pub fn summaries(&self) -> &[BlockSummary] {
        &self.summaries
    }

    /// Total transactions executed so far.
    pub fn tx_count(&self) -> usize {
        self.summaries.iter().map(|s| s.tx_count).sum()
    }

    /// Executes `transactions` as the next block at `time`, appending one
    /// interaction per produced call record to `log`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous block (the log must stay
    /// time-ordered).
    pub fn apply_block(
        &mut self,
        time: Timestamp,
        transactions: Vec<Transaction>,
        log: &mut InteractionLog,
    ) -> BlockSummary {
        self.apply_block_with_receipts(time, transactions, log).0
    }

    /// Like [`Chain::apply_block`] but also returns the per-transaction
    /// receipts, which the workload generator uses to discover contracts
    /// created mid-block.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous block.
    pub fn apply_block_with_receipts(
        &mut self,
        time: Timestamp,
        transactions: Vec<Transaction>,
        log: &mut InteractionLog,
    ) -> (BlockSummary, Vec<crate::transaction::Receipt>) {
        let (summary, outcomes) = self.apply_block_with_outcomes(time, transactions, log);
        (summary, outcomes.into_iter().map(|o| o.receipt).collect())
    }

    /// Like [`Chain::apply_block_with_receipts`] but also returns each
    /// transaction's exact read/write address footprint: execution runs
    /// through the recording overlay
    /// ([`exec::execute_captured`](crate::exec::execute_captured)), which
    /// is byte-identical to direct execution, so the chain and log are
    /// unchanged from the pre-capture path.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous block.
    pub fn apply_block_with_outcomes(
        &mut self,
        time: Timestamp,
        transactions: Vec<Transaction>,
        log: &mut InteractionLog,
    ) -> (BlockSummary, Vec<TxOutcome>) {
        if let Some(last) = self.summaries.last() {
            assert!(time >= last.time, "blocks must advance in time");
        }
        let block = Block::new(self.next_number, time, transactions);
        self.next_number = self.next_number.next();

        let mut gas_used = Gas::ZERO;
        let mut failed = 0usize;
        let mut outcomes = Vec::with_capacity(block.transactions.len());
        for (i, tx) in block.transactions.iter().enumerate() {
            let ctx = ExecContext::new(
                time,
                tx_entropy(self.entropy_seed, block.number, i),
                tx.gas_limit,
            )
            .with_schedule(self.gas_schedule);
            let (receipt, reads, writes) = match tx.payload {
                // A plain transfer's footprint is statically known —
                // sender and recipient, each read and written — so it
                // executes directly, skipping the recording overlay
                // (which would otherwise dominate generation time).
                crate::transaction::TxPayload::Transfer => {
                    let receipt = Vm::execute(&mut self.world, tx, &ctx);
                    let mut footprint = vec![tx.from, tx.to];
                    footprint.sort_unstable();
                    footprint.dedup();
                    footprint.retain(|&a| a != blockpart_types::Address::ZERO);
                    (receipt, footprint.clone(), footprint)
                }
                _ => crate::exec::execute_captured(&mut self.world, tx, &ctx),
            };
            gas_used += receipt.gas_used;
            if !receipt.is_success() {
                failed += 1;
            }
            for call in &receipt.calls {
                log.push(Interaction {
                    time,
                    from: call.from,
                    to: call.to,
                    weight: 1,
                    from_kind: call.from_kind,
                    to_kind: call.to_kind,
                });
            }
            outcomes.push(TxOutcome {
                receipt,
                reads,
                writes,
            });
        }
        let summary = BlockSummary {
            number: block.number,
            time,
            tx_count: block.transactions.len(),
            failed,
            gas_used,
        };
        self.summaries.push(summary);
        (summary, outcomes)
    }
}

/// A generated chain together with its full interaction log and the
/// per-transaction execution records the sharded runtime replays.
#[derive(Clone, Debug)]
pub struct SyntheticChain {
    /// The chain (world state + block summaries).
    pub chain: Chain,
    /// Every interaction, in time order — the study's input.
    pub log: InteractionLog,
    /// Every executed transaction with its access-list footprint, in
    /// chain order — the sharded runtime's input.
    pub txs: Vec<crate::transaction::ExecutedTx>,
}

fn tx_entropy(seed: u64, block: BlockNumber, index: usize) -> u64 {
    let mut z = seed ^ block.get().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (index as u64) << 32;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ContractTemplate;
    use crate::transaction::TxPayload;
    use blockpart_types::Wei;

    fn transfer(from: blockpart_types::Address, to: blockpart_types::Address) -> Transaction {
        Transaction {
            from,
            to,
            value: Wei::new(1),
            gas_limit: Gas::new(30_000),
            payload: TxPayload::Transfer,
        }
    }

    #[test]
    fn blocks_number_sequentially() {
        let mut chain = Chain::new(1);
        let a = chain.world_mut().new_user(Wei::new(10));
        let b = chain.world_mut().new_user(Wei::ZERO);
        let mut log = InteractionLog::new();
        let s0 = chain.apply_block(Timestamp::from_secs(10), vec![transfer(a, b)], &mut log);
        let s1 = chain.apply_block(Timestamp::from_secs(20), vec![transfer(a, b)], &mut log);
        assert_eq!(s0.number, BlockNumber::new(0));
        assert_eq!(s1.number, BlockNumber::new(1));
        assert_eq!(chain.block_count(), 2);
        assert_eq!(chain.tx_count(), 2);
    }

    #[test]
    #[should_panic(expected = "advance in time")]
    fn rejects_time_regression() {
        let mut chain = Chain::new(1);
        let mut log = InteractionLog::new();
        chain.apply_block(Timestamp::from_secs(10), Vec::new(), &mut log);
        chain.apply_block(Timestamp::from_secs(5), Vec::new(), &mut log);
    }

    #[test]
    fn interactions_carry_block_time_and_kinds() {
        let mut chain = Chain::new(1);
        let user = chain.world_mut().new_user(Wei::new(1_000_000));
        let dest = chain.world_mut().new_user(Wei::ZERO);
        let wallet =
            chain
                .world_mut()
                .create_contract(ContractTemplate::Wallet, user, dest.index());
        let mut log = InteractionLog::new();
        let tx = Transaction {
            from: user,
            to: wallet,
            value: Wei::new(10),
            gas_limit: Gas::new(100_000),
            payload: TxPayload::Call { arg: dest.index() },
        };
        chain.apply_block(Timestamp::from_secs(99), vec![tx], &mut log);
        assert_eq!(log.len(), 2); // user->wallet, wallet->dest
        let events = log.events();
        assert!(events.iter().all(|e| e.time == Timestamp::from_secs(99)));
        assert!(events[0].to_kind.is_contract());
        assert!(events[1].from_kind.is_contract());
    }

    #[test]
    fn entropy_differs_per_tx() {
        let e1 = tx_entropy(1, BlockNumber::new(5), 0);
        let e2 = tx_entropy(1, BlockNumber::new(5), 1);
        let e3 = tx_entropy(1, BlockNumber::new(6), 0);
        assert_ne!(e1, e2);
        assert_ne!(e1, e3);
        assert_eq!(e1, tx_entropy(1, BlockNumber::new(5), 0));
    }

    #[test]
    fn gas_accumulates_in_summary() {
        let mut chain = Chain::new(1);
        let a = chain.world_mut().new_user(Wei::new(10));
        let b = chain.world_mut().new_user(Wei::ZERO);
        let mut log = InteractionLog::new();
        let s = chain.apply_block(
            Timestamp::from_secs(10),
            vec![transfer(a, b), transfer(a, b)],
            &mut log,
        );
        assert_eq!(s.gas_used, Gas::new(42_000));
        assert_eq!(s.failed, 0);
    }
}
