/root/repo/target/debug/deps/proptest_refine-f1f47f317e8bb19c.d: crates/partition/tests/proptest_refine.rs

/root/repo/target/debug/deps/proptest_refine-f1f47f317e8bb19c: crates/partition/tests/proptest_refine.rs

crates/partition/tests/proptest_refine.rs:
