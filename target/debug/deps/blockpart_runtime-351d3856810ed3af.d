/root/repo/target/debug/deps/blockpart_runtime-351d3856810ed3af.d: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_runtime-351d3856810ed3af.rmeta: crates/runtime/src/lib.rs crates/runtime/src/clock.rs crates/runtime/src/coordinator.rs crates/runtime/src/event.rs crates/runtime/src/locks.rs crates/runtime/src/net.rs crates/runtime/src/report.rs crates/runtime/src/shard_worker.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/clock.rs:
crates/runtime/src/coordinator.rs:
crates/runtime/src/event.rs:
crates/runtime/src/locks.rs:
crates/runtime/src/net.rs:
crates/runtime/src/report.rs:
crates/runtime/src/shard_worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
