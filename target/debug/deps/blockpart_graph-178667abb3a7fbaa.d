/root/repo/target/debug/deps/blockpart_graph-178667abb3a7fbaa.d: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

/root/repo/target/debug/deps/blockpart_graph-178667abb3a7fbaa: crates/graph/src/lib.rs crates/graph/src/algos.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/event.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/node.rs

crates/graph/src/lib.rs:
crates/graph/src/algos.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/event.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/node.rs:
