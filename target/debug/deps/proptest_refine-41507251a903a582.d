/root/repo/target/debug/deps/proptest_refine-41507251a903a582.d: crates/partition/tests/proptest_refine.rs

/root/repo/target/debug/deps/libproptest_refine-41507251a903a582.rmeta: crates/partition/tests/proptest_refine.rs

crates/partition/tests/proptest_refine.rs:
