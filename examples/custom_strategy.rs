//! End-to-end custom strategy: register a non-paper strategy and run it
//! through the unified pipeline — offline edge-cut metrics *and* the 2PC
//! runtime replay — without modifying any `blockpart-*` crate.
//!
//! The strategy here is "sticky LDG": the Linear Deterministic Greedy
//! streaming partitioner re-run weekly over the trailing month, with
//! min-cut placement for newcomers and a slower simulated network to
//! show the per-strategy `runtime_config` override.
//!
//! ```sh
//! cargo run --release --example custom_strategy
//! ```

use std::sync::Arc;

use blockpart::core::{Experiment, StrategyRegistry, StrategySpec};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::partition::{LinearGreedy, Partitioner};
use blockpart::runtime::RuntimeConfig;
use blockpart::shard::{PlacementRule, RepartitionPolicy, RepartitionScope, SimulatorConfig};
use blockpart::types::{Duration, ShardCount};

struct StickyLdg;

impl StrategySpec for StickyLdg {
    fn name(&self) -> &str {
        "STICKY-LDG"
    }

    fn build_partitioner(&self, _seed: u64) -> Box<dyn Partitioner> {
        Box::new(LinearGreedy::new(1.2))
    }

    fn simulator_config(&self, k: ShardCount) -> SimulatorConfig {
        SimulatorConfig::new(k)
            .with_placement(PlacementRule::MinCut)
            .with_scope(RepartitionScope::Window)
            .with_scope_window(Duration::weeks(4))
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::weeks(1),
            })
    }

    fn runtime_config(&self, k: ShardCount) -> RuntimeConfig {
        // model a geo-distributed deployment for this strategy only
        RuntimeConfig::new(k).with_net_latency_us(5_000)
    }
}

fn main() {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(11)).generate();
    println!(
        "chain: {} transactions, {} interactions\n",
        chain.chain.tx_count(),
        chain.log.len()
    );

    let mut registry = StrategyRegistry::with_builtins();
    registry.register(
        "sticky-ldg",
        "weekly LDG restream of the trailing month",
        Arc::new(StickyLdg),
    );

    let report = Experiment::over_chain(&chain)
        .named_strategies(&registry, "hash,metis,sticky-ldg")
        .expect("strategies resolve")
        .shard_counts(vec![ShardCount::TWO, ShardCount::new(4).expect("4 > 0")])
        .replay(true)
        .run();

    println!(
        "offline partition quality:\n{}",
        report.offline_table().render_ascii()
    );
    println!(
        "2PC replay cost:\n{}",
        report.runtime_table().render_ascii()
    );

    let k = ShardCount::TWO;
    let custom = report.runtime("sticky-ldg", k).expect("replay ran");
    println!(
        "STICKY-LDG at k=2: {} — the custom strategy went through the same \
         pipeline as the built-ins",
        custom.headline()
    );
}
