//! The paper's distributed Kernighan–Lin method: shard-local proposals and
//! an oracle-computed move-probability matrix.

use blockpart_types::ShardId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::hashing::HashPartitioner;
use crate::partition::Partition;
use crate::traits::{PartitionRequest, Partitioner};

/// Tuning knobs for [`DistributedKl`].
///
/// # Examples
///
/// ```
/// use blockpart_partition::kl::DistributedKlConfig;
///
/// let cfg = DistributedKlConfig {
///     rounds: 4,
///     ..DistributedKlConfig::default()
/// };
/// assert_eq!(cfg.rounds, 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributedKlConfig {
    /// Proposal/exchange rounds per invocation. Each round is one full
    /// shard-select → oracle → exchange cycle.
    pub rounds: usize,
    /// Fraction of the average shard weight that a shard may exceed while
    /// the oracle still allows inbound flow. Smaller is stricter balance.
    pub slack: f64,
    /// Multiplier applied to every move probability. Without damping all
    /// boundary vertices of a symmetric cut move at once and merely swap
    /// sides; a factor below 1 breaks the oscillation (the same reason
    /// balanced label propagation moves only a fraction per round).
    pub damping: f64,
    /// RNG seed; the method applies moves probabilistically as the paper
    /// describes, so the seed makes runs reproducible.
    pub seed: u64,
}

impl Default for DistributedKlConfig {
    fn default() -> Self {
        DistributedKlConfig {
            rounds: 8,
            slack: 0.005,
            damping: 0.5,
            seed: 0x6b6c,
        }
    }
}

/// The distributed KL method of §II-C.
///
/// Starting from the installed partition (or hashing when none exists),
/// each round:
///
/// 1. **Shard-local selection** — every vertex computes its connectivity to
///    each shard from the request graph; a vertex whose strongest external
///    shard beats its home shard proposes to move there (positive gain);
/// 2. **Oracle** — proposals are aggregated into a k×k weight matrix `W`.
///    The oracle converts it into a probability matrix `P` that caps each
///    directed flow `s → t` at the matched reverse flow plus half the
///    current weight surplus of `s` over `t` (so exchanges keep shards
///    dynamically balanced);
/// 3. **Exchange** — each proposing vertex moves with probability
///    `P[s][t]`, drawn from the seeded RNG.
///
/// The method optimizes toward a local minimum (the paper's noted pitfall)
/// and typically moves many vertices in the process.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::{DistributedKl, PartitionRequest, Partitioner};
/// use blockpart_types::ShardCount;
///
/// let csr = Csr::from_edges(
///     6,
///     &[(0, 1, 9), (1, 2, 9), (0, 2, 9), (3, 4, 9), (4, 5, 9), (3, 5, 9), (2, 3, 1)],
/// );
/// let mut kl = DistributedKl::with_seed(7);
/// let p = kl.partition(&PartitionRequest::new(&csr, ShardCount::TWO));
/// assert_eq!(p.len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct DistributedKl {
    config: DistributedKlConfig,
    invocation: u64,
}

impl DistributedKl {
    /// Creates the method with the given configuration.
    pub fn new(config: DistributedKlConfig) -> Self {
        DistributedKl {
            config,
            invocation: 0,
        }
    }

    /// Creates the method with default tuning and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        DistributedKl::new(DistributedKlConfig {
            seed,
            ..DistributedKlConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DistributedKlConfig {
        &self.config
    }
}

impl Default for DistributedKl {
    fn default() -> Self {
        DistributedKl::new(DistributedKlConfig::default())
    }
}

impl Partitioner for DistributedKl {
    fn name(&self) -> &str {
        "kl"
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        let n = req.csr.node_count();
        let k = req.k;
        let mut part = match req.previous {
            Some(p) if p.len() == n && p.shard_count() == k => p.clone(),
            _ => HashPartitioner::new().partition(req),
        };
        // Each invocation gets a distinct-but-deterministic RNG stream.
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed ^ self.invocation.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        self.invocation += 1;

        for _ in 0..self.config.rounds {
            one_round(req, &mut part, &self.config, &mut rng);
        }
        part
    }
}

/// One select → oracle → exchange cycle. Returns the number of moves.
fn one_round(
    req: &PartitionRequest<'_>,
    part: &mut Partition,
    config: &DistributedKlConfig,
    rng: &mut SmallRng,
) -> usize {
    let csr = req.csr;
    let k = req.k.as_usize();
    let n = csr.node_count();

    // -- Phase 1: shard-local candidate selection ------------------------
    // candidate: (vertex, source shard, target shard)
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    let mut conn = vec![0u64; k];
    for v in 0..n {
        for c in conn.iter_mut() {
            *c = 0;
        }
        for (u, w) in csr.neighbors(v) {
            conn[part.shard_of(u as usize).as_usize()] += w;
        }
        let home = part.shard_of(v).as_usize();
        let (best_t, best_w) = conn
            .iter()
            .enumerate()
            .filter(|&(t, _)| t != home)
            .max_by_key(|&(t, w)| (*w, std::cmp::Reverse(t)))
            .map(|(t, &w)| (t, w))
            .unwrap_or((home, 0));
        if best_w > conn[home] {
            candidates.push((v, home, best_t));
        }
    }
    if candidates.is_empty() {
        return 0;
    }

    // -- Phase 2: the oracle ---------------------------------------------
    let vwgt = csr.vertex_weights();
    let mut proposed = vec![vec![0u64; k]; k]; // W[s][t]
    for &(v, s, t) in &candidates {
        proposed[s][t] += vwgt[v];
    }
    let shard_weights = part.shard_weights(vwgt);
    let avg = csr.total_vertex_weight() as f64 / k as f64;
    let slack_w = (avg * config.slack).ceil() as u64;

    let mut allowed = vec![vec![0u64; k]; k];
    for s in 0..k {
        for t in 0..k {
            if s == t || proposed[s][t] == 0 {
                continue;
            }
            // Matched exchange keeps balance; surplus flow lets an
            // overweight shard drain toward a lighter one.
            let surplus = shard_weights[s].saturating_sub(shard_weights[t]) / 4;
            allowed[s][t] = proposed[s][t].min(proposed[t][s] + surplus + slack_w);
        }
    }
    let prob: Vec<Vec<f64>> = (0..k)
        .map(|s| {
            (0..k)
                .map(|t| {
                    if proposed[s][t] == 0 {
                        0.0
                    } else {
                        (allowed[s][t] as f64 / proposed[s][t] as f64) * config.damping
                    }
                })
                .collect()
        })
        .collect();

    // -- Phase 3: probabilistic exchange ----------------------------------
    let mut moves = 0usize;
    for &(v, s, t) in &candidates {
        if rng.gen::<f64>() < prob[s][t] {
            part.assign(v, ShardId::new(t as u16));
            moves += 1;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CutMetrics;
    use blockpart_graph::Csr;
    use blockpart_types::ShardCount;

    fn two_communities(bridge_w: u64) -> Csr {
        let mut edges = Vec::new();
        // community A: 0..8, community B: 8..16, cliques
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b, 5));
                edges.push((a + 8, b + 8, 5));
            }
        }
        edges.push((7, 8, bridge_w));
        Csr::from_edges(16, &edges)
    }

    #[test]
    fn reduces_edge_cut_from_hash_start() {
        let csr = two_communities(1);
        let mut kl = DistributedKl::with_seed(42);
        let req = PartitionRequest::new(&csr, ShardCount::TWO);
        let p = kl.partition(&req);
        let m = CutMetrics::compute(&csr, &p);
        // hashing would cut ~50% of intra-community edges; KL should find
        // a much better local minimum.
        let mut hash = HashPartitioner::new();
        let hm = CutMetrics::compute(&csr, &hash.partition(&req));
        assert!(
            m.dynamic_edge_cut < hm.dynamic_edge_cut,
            "kl {} vs hash {}",
            m.dynamic_edge_cut,
            hm.dynamic_edge_cut
        );
    }

    #[test]
    fn is_deterministic_per_seed() {
        let csr = two_communities(1);
        let req = PartitionRequest::new(&csr, ShardCount::TWO);
        let p1 = DistributedKl::with_seed(7).partition(&req);
        let p2 = DistributedKl::with_seed(7).partition(&req);
        assert_eq!(p1, p2);
    }

    #[test]
    fn refines_previous_partition() {
        let csr = two_communities(1);
        // previous: perfect split. KL should keep it (no gain available).
        let assignment: Vec<u16> = (0..16).map(|v| u16::from(v >= 8)).collect();
        let prev = Partition::from_assignment(assignment, ShardCount::TWO).unwrap();
        let req = PartitionRequest::new(&csr, ShardCount::TWO).with_previous(&prev);
        let p = DistributedKl::with_seed(3).partition(&req);
        assert_eq!(CutMetrics::compute(&csr, &p).cut_edges, 1);
    }

    #[test]
    fn keeps_balance_within_slack() {
        let csr = two_communities(1);
        let mut kl = DistributedKl::new(DistributedKlConfig {
            rounds: 12,
            slack: 0.05,
            seed: 11,
            ..DistributedKlConfig::default()
        });
        let p = kl.partition(&PartitionRequest::new(&csr, ShardCount::TWO));
        let m = CutMetrics::compute(&csr, &p);
        // all vertices have equal weight here, so dynamic balance should be
        // far from the degenerate "everything on one shard" value of 2.
        assert!(m.dynamic_balance < 1.6, "balance {}", m.dynamic_balance);
    }

    #[test]
    fn handles_empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        let p = DistributedKl::default().partition(&PartitionRequest::new(&csr, ShardCount::TWO));
        assert!(p.is_empty());
    }

    #[test]
    fn works_with_more_shards() {
        let csr = two_communities(1);
        let k = ShardCount::new(4).unwrap();
        let p = DistributedKl::with_seed(5).partition(&PartitionRequest::new(&csr, k));
        assert_eq!(p.shard_count(), k);
        assert_eq!(p.len(), 16);
    }
}
