//! Transactions, call records and receipts.

use blockpart_types::{AccountKind, Address, Gas, Timestamp, Wei};
use serde::{Deserialize, Serialize};

/// What a transaction does once it reaches its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxPayload {
    /// Plain ether transfer (or a contract call with no argument).
    Transfer,
    /// Call the target contract with one argument word.
    Call {
        /// The argument word passed on the callee's stack.
        arg: u64,
    },
    /// Deploy a new contract of the given template id; the `to` field is
    /// ignored (like Ethereum's `to = null` creation transactions).
    Create {
        /// Template id (see [`ContractTemplate`](crate::ContractTemplate)).
        template: u64,
        /// Constructor argument.
        arg: u64,
    },
}

/// A user-submitted transaction.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::{Transaction, TxPayload};
/// use blockpart_types::{Address, Gas, Wei};
///
/// let tx = Transaction {
///     from: Address::from_index(1),
///     to: Address::from_index(2),
///     value: Wei::new(100),
///     gas_limit: Gas::new(100_000),
///     payload: TxPayload::Transfer,
/// };
/// assert_eq!(tx.value, Wei::new(100));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Sender (always an externally-owned account).
    pub from: Address,
    /// Recipient account or contract.
    pub to: Address,
    /// Ether sent along.
    pub value: Wei,
    /// Gas budget for execution.
    pub gas_limit: Gas,
    /// What to execute.
    pub payload: TxPayload,
}

/// How an edge between two vertices came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallKind {
    /// The top-level transaction edge (user → target).
    Transaction,
    /// A value transfer performed by contract code.
    Transfer,
    /// A contract-to-contract (or contract-to-account) call.
    Call,
    /// Contract creation.
    Create,
}

/// One interaction produced while executing a transaction. Each record
/// becomes an edge of the blockchain graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallRecord {
    /// Caller / sender vertex.
    pub from: Address,
    /// Callee / recipient vertex.
    pub to: Address,
    /// Kind of the source vertex at the time of the call.
    pub from_kind: AccountKind,
    /// Kind of the target vertex at the time of the call.
    pub to_kind: AccountKind,
    /// Ether moved by this call.
    pub value: Wei,
    /// What kind of interaction this was.
    pub kind: CallKind,
}

/// Whether a transaction completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxStatus {
    /// Executed to completion.
    Success,
    /// Reverted or hit a VM error; gas is still consumed and the top-level
    /// edge still exists (the interaction happened on-chain).
    Failed,
}

/// The result of executing one transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// Outcome.
    pub status: TxStatus,
    /// Gas consumed (includes the 21 000 base cost).
    pub gas_used: Gas,
    /// Every interaction, in execution order; the first is always the
    /// top-level [`CallKind::Transaction`] edge.
    pub calls: Vec<CallRecord>,
    /// Contracts created during execution.
    pub created: Vec<Address>,
}

impl Receipt {
    /// Returns `true` if the transaction succeeded.
    pub fn is_success(&self) -> bool {
        self.status == TxStatus::Success
    }
}

/// One transaction as executed on the canonical (unsharded) chain: when it
/// ran, what it cost and which vertices it touched.
///
/// The sharded runtime replays these records: the `touched` set acts as
/// the transaction's declared access list (like EIP-2930), deciding which
/// shards must participate in its execution.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::{ExecutedTx, Receipt, Transaction, TxPayload, TxStatus};
/// use blockpart_types::{Address, Gas, Timestamp, Wei};
///
/// let tx = Transaction {
///     from: Address::from_index(1),
///     to: Address::from_index(2),
///     value: Wei::new(5),
///     gas_limit: Gas::new(30_000),
///     payload: TxPayload::Transfer,
/// };
/// let receipt = Receipt {
///     status: TxStatus::Success,
///     gas_used: Gas::new(21_000),
///     calls: Vec::new(),
///     created: Vec::new(),
/// };
/// let exec = ExecutedTx::new(Timestamp::from_secs(9), tx, &receipt);
/// assert_eq!(exec.touched, vec![tx.from, tx.to]);
/// // without captured access sets, reads and writes fall back to the
/// // unified list — conservative, never under-declared
/// assert_eq!(exec.declared_reads(), exec.touched.as_slice());
/// assert_eq!(exec.declared_writes(), exec.touched.as_slice());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutedTx {
    /// Block time of the canonical execution.
    pub time: Timestamp,
    /// The transaction itself.
    pub tx: Transaction,
    /// Gas the canonical execution consumed.
    pub gas_used: Gas,
    /// Canonical outcome.
    pub status: TxStatus,
    /// Every distinct address the execution touched, in first-touch
    /// order; the sender always comes first. [`Address::ZERO`] (the
    /// creation sink) is excluded — it is not real state.
    pub touched: Vec<Address>,
    /// Addresses the canonical execution *read* (ascending), when the
    /// run captured exact access sets; empty on records predating the
    /// split — use [`declared_reads`](Self::declared_reads), which falls
    /// back to `touched`.
    #[serde(default)]
    pub reads: Vec<Address>,
    /// Addresses the canonical execution *wrote* (ascending); same
    /// conventions as [`reads`](Self::reads).
    #[serde(default)]
    pub writes: Vec<Address>,
}

impl ExecutedTx {
    /// Builds the record from a transaction and its canonical receipt.
    ///
    /// Without captured access sets, `reads` and `writes` both default
    /// to the unified `touched` list — a conservative over-declaration
    /// (a hub contract shows up as read+write, never write-only).
    pub fn new(time: Timestamp, tx: Transaction, receipt: &Receipt) -> Self {
        let touched = Self::touched_of(tx, receipt);
        ExecutedTx {
            time,
            tx,
            gas_used: receipt.gas_used,
            status: receipt.status,
            reads: touched.clone(),
            writes: touched.clone(),
            touched,
        }
    }

    /// Builds the record with the exact read/write address sets captured
    /// by overlay execution (see
    /// [`exec::execute_captured`](crate::exec::execute_captured)).
    /// `touched` keeps its historical first-touch order and contents.
    pub fn with_access(
        time: Timestamp,
        tx: Transaction,
        receipt: &Receipt,
        reads: Vec<Address>,
        writes: Vec<Address>,
    ) -> Self {
        ExecutedTx {
            time,
            tx,
            gas_used: receipt.gas_used,
            status: receipt.status,
            touched: Self::touched_of(tx, receipt),
            reads,
            writes,
        }
    }

    /// The declared read set: the captured `reads` when present,
    /// otherwise the unified `touched` list (records predating the
    /// read/write split).
    pub fn declared_reads(&self) -> &[Address] {
        if self.reads.is_empty() {
            &self.touched
        } else {
            &self.reads
        }
    }

    /// The declared write set; same fallback as
    /// [`declared_reads`](Self::declared_reads).
    pub fn declared_writes(&self) -> &[Address] {
        if self.writes.is_empty() {
            &self.touched
        } else {
            &self.writes
        }
    }

    fn touched_of(tx: Transaction, receipt: &Receipt) -> Vec<Address> {
        let mut touched = vec![tx.from];
        let mut push = |a: Address| {
            if a != Address::ZERO && !touched.contains(&a) {
                touched.push(a);
            }
        };
        push(tx.to);
        for call in &receipt.calls {
            push(call.from);
            push(call.to);
        }
        for &created in &receipt.created {
            push(created);
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipt_success_flag() {
        let r = Receipt {
            status: TxStatus::Success,
            gas_used: Gas::new(21_000),
            calls: Vec::new(),
            created: Vec::new(),
        };
        assert!(r.is_success());
        let f = Receipt {
            status: TxStatus::Failed,
            ..r
        };
        assert!(!f.is_success());
    }

    #[test]
    fn payload_variants_distinct() {
        assert_ne!(TxPayload::Transfer, TxPayload::Call { arg: 0 });
        assert_ne!(
            TxPayload::Create {
                template: 0,
                arg: 0
            },
            TxPayload::Create {
                template: 1,
                arg: 0
            }
        );
    }
}
