/root/repo/target/debug/deps/blockpart-d2340befbd44d4b5.d: src/bin/blockpart.rs

/root/repo/target/debug/deps/blockpart-d2340befbd44d4b5: src/bin/blockpart.rs

src/bin/blockpart.rs:
