/root/repo/target/debug/deps/fig3-fc433301a6935b58.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-fc433301a6935b58.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
