/root/repo/target/release/deps/blockpart-3c0a00840ae943d0.d: src/bin/blockpart.rs

/root/repo/target/release/deps/blockpart-3c0a00840ae943d0: src/bin/blockpart.rs

src/bin/blockpart.rs:
