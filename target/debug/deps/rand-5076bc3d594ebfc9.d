/root/repo/target/debug/deps/rand-5076bc3d594ebfc9.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/rand-5076bc3d594ebfc9: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
