//! The population model: who sends transactions to whom.
//!
//! Real blockchain graphs are heavy-tailed: a handful of exchange accounts
//! and hub contracts attract a large share of all interactions, most
//! vertices appear a handful of times, and the 2016 attack minted millions
//! of vertices that were used exactly once. The model reproduces this with
//! *preferential attachment*: every interaction endpoint is appended to a
//! sampling bag, and sampling uniformly from the bag is
//! degree-proportional sampling.

use blockpart_types::Address;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::program::ContractTemplate;

/// Heavy-tailed account and contract population with degree-proportional
/// sampling.
///
/// # Examples
///
/// ```
/// use blockpart_ethereum::gen::Population;
/// use blockpart_types::Address;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut pop = Population::new();
/// pop.add_user(Address::from_index(1));
/// pop.note_user_activity(Address::from_index(1));
/// let mut rng = SmallRng::seed_from_u64(0);
/// assert_eq!(pop.sample_user(&mut rng), Some(Address::from_index(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Population {
    /// Distinct users (for uniform sampling and counting).
    users: Vec<Address>,
    /// Preferential-attachment bag: one entry per observed user activity.
    user_bag: Vec<Address>,
    /// Contracts by template, with their own activity bags.
    contracts: [Vec<Address>; 6],
    contract_bags: [Vec<Address>; 6],
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Number of known users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of known contracts of `template`.
    pub fn contract_count(&self, template: ContractTemplate) -> usize {
        self.contracts[template.id() as usize].len()
    }

    /// Total known contracts.
    pub fn total_contracts(&self) -> usize {
        self.contracts.iter().map(Vec::len).sum()
    }

    /// Registers a new user.
    pub fn add_user(&mut self, user: Address) {
        self.users.push(user);
        // One bag entry at birth so brand-new users are reachable.
        self.user_bag.push(user);
    }

    /// Registers a new contract of `template`.
    pub fn add_contract(&mut self, template: ContractTemplate, contract: Address) {
        self.contracts[template.id() as usize].push(contract);
        self.contract_bags[template.id() as usize].push(contract);
    }

    /// Records one unit of user activity (degree) for sampling.
    pub fn note_user_activity(&mut self, user: Address) {
        self.user_bag.push(user);
    }

    /// Records one unit of contract activity for sampling.
    pub fn note_contract_activity(&mut self, template: ContractTemplate, contract: Address) {
        self.contract_bags[template.id() as usize].push(contract);
    }

    /// Samples a user proportionally to past activity (preferential
    /// attachment). `None` while the population is empty.
    pub fn sample_user(&self, rng: &mut SmallRng) -> Option<Address> {
        pick(&self.user_bag, rng)
    }

    /// Samples a user uniformly (used for "fresh counterparty" traffic
    /// that keeps the tail of the degree distribution fat).
    pub fn sample_user_uniform(&self, rng: &mut SmallRng) -> Option<Address> {
        pick(&self.users, rng)
    }

    /// Samples a contract of `template` proportionally to past activity.
    pub fn sample_contract(
        &self,
        template: ContractTemplate,
        rng: &mut SmallRng,
    ) -> Option<Address> {
        pick(&self.contract_bags[template.id() as usize], rng)
    }

    /// Samples the most recently created contract of `template` with 50%
    /// probability, otherwise any — models the "hot new ICO" effect.
    pub fn sample_contract_recent_biased(
        &self,
        template: ContractTemplate,
        rng: &mut SmallRng,
    ) -> Option<Address> {
        let list = &self.contracts[template.id() as usize];
        if list.is_empty() {
            return None;
        }
        if rng.gen_bool(0.5) {
            // one of the last 4 deployed
            let lo = list.len().saturating_sub(4);
            Some(list[rng.gen_range(lo..list.len())])
        } else {
            self.sample_contract(template, rng)
        }
    }

    /// Truncates the activity bags to bound memory on very long runs,
    /// keeping the most recent `max` entries (recency-weighted
    /// preferential attachment).
    pub fn compact(&mut self, max: usize) {
        compact_bag(&mut self.user_bag, max);
        for bag in &mut self.contract_bags {
            compact_bag(bag, max);
        }
    }
}

fn pick(bag: &[Address], rng: &mut SmallRng) -> Option<Address> {
    if bag.is_empty() {
        None
    } else {
        Some(bag[rng.gen_range(0..bag.len())])
    }
}

fn compact_bag(bag: &mut Vec<Address>, max: usize) {
    if bag.len() > max {
        bag.drain(..bag.len() - max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn empty_population_samples_none() {
        let pop = Population::new();
        assert_eq!(pop.sample_user(&mut rng()), None);
        assert_eq!(
            pop.sample_contract(ContractTemplate::Token, &mut rng()),
            None
        );
    }

    #[test]
    fn preferential_attachment_biases_sampling() {
        let mut pop = Population::new();
        let hot = Address::from_index(1);
        let cold = Address::from_index(2);
        pop.add_user(hot);
        pop.add_user(cold);
        for _ in 0..98 {
            pop.note_user_activity(hot);
        }
        let mut r = rng();
        let mut counts: HashMap<Address, usize> = HashMap::new();
        for _ in 0..1_000 {
            *counts.entry(pop.sample_user(&mut r).unwrap()).or_insert(0) += 1;
        }
        let hot_n = counts.get(&hot).copied().unwrap_or(0);
        assert!(hot_n > 900, "hot sampled {hot_n}/1000");
    }

    #[test]
    fn uniform_sampling_ignores_activity() {
        let mut pop = Population::new();
        for i in 0..10 {
            pop.add_user(Address::from_index(i));
        }
        for _ in 0..1_000 {
            pop.note_user_activity(Address::from_index(0));
        }
        let mut r = rng();
        let mut zero = 0;
        for _ in 0..1_000 {
            if pop.sample_user_uniform(&mut r) == Some(Address::from_index(0)) {
                zero += 1;
            }
        }
        assert!((50..200).contains(&zero), "uniform sampled 0 {zero} times");
    }

    #[test]
    fn contracts_tracked_per_template() {
        let mut pop = Population::new();
        pop.add_contract(ContractTemplate::Token, Address::from_index(10));
        pop.add_contract(ContractTemplate::Game, Address::from_index(11));
        assert_eq!(pop.contract_count(ContractTemplate::Token), 1);
        assert_eq!(pop.contract_count(ContractTemplate::Game), 1);
        assert_eq!(pop.contract_count(ContractTemplate::Wallet), 0);
        assert_eq!(pop.total_contracts(), 2);
        assert_eq!(
            pop.sample_contract(ContractTemplate::Token, &mut rng()),
            Some(Address::from_index(10))
        );
    }

    #[test]
    fn recent_bias_prefers_new_deployments() {
        let mut pop = Population::new();
        for i in 0..100 {
            pop.add_contract(ContractTemplate::Crowdsale, Address::from_index(i));
        }
        // heavy activity on an old one
        for _ in 0..1_000 {
            pop.note_contract_activity(ContractTemplate::Crowdsale, Address::from_index(0));
        }
        let mut r = rng();
        let mut recent = 0;
        for _ in 0..1_000 {
            let c = pop
                .sample_contract_recent_biased(ContractTemplate::Crowdsale, &mut r)
                .unwrap();
            if c.index() >= 96 {
                recent += 1;
            }
        }
        assert!(recent > 300, "recent sampled {recent}/1000");
    }

    #[test]
    fn compact_bounds_memory() {
        let mut pop = Population::new();
        pop.add_user(Address::from_index(0));
        for _ in 0..10_000 {
            pop.note_user_activity(Address::from_index(0));
        }
        pop.compact(100);
        assert!(pop.user_bag.len() <= 100);
        // sampling still works
        assert!(pop.sample_user(&mut rng()).is_some());
    }
}
