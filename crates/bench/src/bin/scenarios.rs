//! The scenario-matrix harness: scores every adversarial scenario
//! against the requested strategies through offline simulation, 2PC
//! replay and the live repartitioning service, and writes a
//! stable-schema JSON report plus a flat CSV.
//!
//! ```sh
//! # CI profile: all scenarios × {hash, tr-metis} at k=2
//! cargo run --release -p blockpart-bench --bin scenarios -- \
//!     --out scenarios.json --csv scenarios.csv \
//!     --check bench/scenarios-baseline.json
//! ```
//!
//! Exit codes: `0` success, `1` usage or I/O error, `2` schema-drift
//! gate failed.

use std::process::ExitCode;

use blockpart_bench::scenario_matrix::{run, schema_drift, MatrixConfig, MatrixReport};
use blockpart_metrics::Json;

const USAGE: &str = "\
usage: scenarios [options]

options:
  --scale F          generator scale (default 0.0004)
  --seed N           generator/partitioner seed (default 42)
  --scenarios LIST   comma-separated scenario specs (default all)
  --strategies LIST  comma-separated strategy specs (default hash,tr-metis)
  --k LIST           comma-separated shard counts (default 2)
  --engine SPEC      intra-shard execution engine (default serial);
                     informational column — engines are
                     parity-guaranteed and never cause schema drift
  --out PATH         where to write the JSON report (default scenarios.json)
  --csv PATH         also write the matrix as CSV
  --check PATH       compare the matrix shape against a baseline document
                     and fail on schema drift (exit code 2); metric
                     values are not gated
  --help             print this help
";

struct Options {
    config: MatrixConfig,
    out: String,
    csv: Option<String>,
    check: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut config = MatrixConfig::ci();
    let mut out = "scenarios.json".to_string();
    let mut csv = None;
    let mut check = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                config.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "invalid --scale".to_string())?
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--scenarios" => config.scenarios = value("--scenarios")?,
            "--strategies" => config.strategies = value("--strategies")?,
            "--k" => {
                config.shard_counts = value("--k")?
                    .split(',')
                    .map(|k| k.trim().parse::<u16>())
                    .collect::<Result<Vec<u16>, _>>()
                    .map_err(|_| "invalid --k list".to_string())?;
                if config.shard_counts.is_empty() || config.shard_counts.contains(&0) {
                    return Err("--k needs positive shard counts".into());
                }
            }
            "--engine" => config.engine = value("--engine")?,
            "--out" => out = value("--out")?,
            "--csv" => csv = Some(value("--csv")?),
            "--check" => check = Some(value("--check")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options {
        config,
        out,
        csv,
        check,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("scenarios: {message}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(1);
        }
    };

    let report = match run(&options.config) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("scenarios: {message}");
            return ExitCode::from(1);
        }
    };
    let json = report.to_json().render_pretty();
    if let Err(e) = std::fs::write(&options.out, format!("{json}\n")) {
        eprintln!("scenarios: cannot write {}: {e}", options.out);
        return ExitCode::from(1);
    }
    println!("wrote {} ({} rows)", options.out, report.rows.len());
    if let Some(path) = &options.csv {
        if let Err(e) = std::fs::write(path, report.to_csv()) {
            eprintln!("scenarios: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {path}");
    }

    // the headline the matrix exists to show: how much each hostile
    // workload degrades each strategy's cut and coordination costs
    for row in &report.rows {
        println!(
            "{:<40} {:<10} k={} cut {:.3} cross {:>5.1}% p99 {:>8.2} ms \
             migrations {:>3} ({} accounts / {} bytes) during-p99 {:.2} ms",
            row.scenario,
            row.strategy,
            row.k,
            row.cut,
            row.cross_pct,
            row.p99_ms,
            row.migrations,
            row.accounts_moved,
            row.bytes_moved,
            row.during_p99_ms,
        );
    }

    let Some(baseline_path) = options.check else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
        .and_then(|doc| MatrixReport::from_json(&doc))
    {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("scenarios: cannot load baseline {baseline_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let drift = schema_drift(&report, &baseline);
    for message in &drift {
        println!("SCHEMA DRIFT: {message}");
    }
    if drift.is_empty() {
        println!(
            "schema gate passed: {} matrix rows match {baseline_path}",
            report.rows.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
