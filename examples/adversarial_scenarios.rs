//! Adversarial scenarios: build hostile workloads from the scenario
//! registry, show a hub burst degrading the offline partitioners, and
//! score it through the 2PC replay where HASH pays the coordination
//! tax.
//!
//! ```sh
//! cargo run --release --example adversarial_scenarios
//! ```

use blockpart::core::ablation::{offline_partitioner_comparison, offline_table};
use blockpart::core::{Experiment, ScenarioRegistry, StrategyRegistry};
use blockpart::ethereum::gen::GeneratorConfig;
use blockpart::types::ShardCount;

/// Static METIS edge-cut of the scenario's final graph at k = 2.
fn metis_static_cut(rows: &[(String, blockpart::partition::CutMetrics)]) -> f64 {
    rows.iter()
        .find(|(name, _)| name == "metis")
        .map(|(_, m)| m.static_edge_cut)
        .expect("metis row present")
}

fn main() {
    let scenarios = ScenarioRegistry::with_builtins();
    let strategies = StrategyRegistry::with_builtins();
    println!("registered scenarios:");
    for name in scenarios.factory_names() {
        println!("  {name}");
    }

    // The same 30-month timeline, friendly and under an ICO-style burst:
    // three crowdsale hubs absorbing a large share of the traffic.
    let config = GeneratorConfig::demo_scale(42).with_scale(0.0004);
    let k = ShardCount::TWO;
    let friendly = scenarios
        .resolve("friendly")
        .expect("built-in scenario resolves")
        .build(&config);
    let hostile = scenarios
        .resolve("hub-burst[contracts=3]")
        .expect("built-in scenario resolves")
        .build(&config);
    println!(
        "\nfriendly chain: {} txs; under hub-burst[contracts=3]: {} txs",
        friendly.txs.len(),
        hostile.txs.len()
    );

    // Offline: the burst concentrates edges on a few hub vertices, so
    // any balanced partition must cut a large share of them — METIS
    // loses its advantage, HASH stays at its usual coin-flip cut.
    println!("\nfriendly, one-shot partitioners at k = 2:");
    let friendly_rows = offline_partitioner_comparison(&friendly.log, k);
    println!("{}", offline_table(&friendly_rows).render_ascii());
    println!("hub-burst[contracts=3], same partitioners:");
    let hostile_rows = offline_partitioner_comparison(&hostile.log, k);
    println!("{}", offline_table(&hostile_rows).render_ascii());

    let friendly_cut = metis_static_cut(&friendly_rows);
    let hostile_cut = metis_static_cut(&hostile_rows);
    println!("METIS static cut: {friendly_cut:.3} friendly -> {hostile_cut:.3} under the burst");
    assert!(
        hostile_cut > friendly_cut + 0.03,
        "hub-burst should demonstrably degrade the METIS cut \
         ({hostile_cut:.3} vs friendly {friendly_cut:.3})"
    );

    // Replay: HASH scatters the hub's counterparties across shards, so
    // the burst turns into cross-shard 2PC traffic and queueing delay.
    let cross_ratio = |name: &str| {
        let report = Experiment::from_generator(config.clone())
            .named_scenario(&scenarios, name)
            .expect("scenario resolves")
            .named_strategies(&strategies, "hash")
            .expect("built-in strategy resolves")
            .shard_counts(vec![k])
            .offline(false)
            .replay(true)
            .run();
        report
            .runtime("hash", k)
            .expect("replay ran")
            .cross_shard_ratio
    };
    let friendly_cross = cross_ratio("friendly");
    let hostile_cross = cross_ratio("hub-burst[contracts=3]");
    println!(
        "HASH cross-shard ratio: {:.1}% friendly -> {:.1}% under the burst",
        friendly_cross * 100.0,
        hostile_cross * 100.0
    );
    assert!(
        hostile_cross > friendly_cross + 0.05,
        "hub-burst should push more HASH transactions cross-shard \
         ({hostile_cross:.3} vs friendly {friendly_cross:.3})"
    );

    println!("\nreading the numbers:");
    println!("  * the burst's crowdsale hubs touch thousands of contributors, so");
    println!("    every balanced partition cuts a big share of their edges;");
    println!("  * HASH keeps its coin-flip cut but pays in cross-shard commits;");
    println!("  * `scenarios` can compose, e.g. `hub-burst[contracts=2]+dummy-spam`,");
    println!("    and `blockpart study --scenario ... --strategy tr-metis` scores any mix.");
}
