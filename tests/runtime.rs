//! Integration tests for the sharded execution runtime: partition
//! quality must translate into execution-level coordination cost, and
//! the whole engine must be deterministic.

use blockpart::core::{Method, RuntimeStudy};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::ethereum::SyntheticChain;
use blockpart::types::ShardCount;

fn history() -> &'static SyntheticChain {
    static H: std::sync::OnceLock<SyntheticChain> = std::sync::OnceLock::new();
    H.get_or_init(|| ChainGenerator::new(GeneratorConfig::test_scale(21)).generate())
}

#[test]
fn hash_pays_more_cross_shard_coordination_than_metis() {
    let chain = history();
    let k = ShardCount::new(4).expect("non-zero");
    let result = RuntimeStudy::new(chain)
        .methods(vec![Method::Hash, Method::Metis])
        .shard_counts(vec![k])
        .seed(7)
        .run();
    let hash = result.get(Method::Hash, k).expect("hash ran");
    let metis = result.get(Method::Metis, k).expect("metis ran");

    // the headline: a min-cut partition keeps more transactions
    // single-shard than hashing on the same chain
    assert!(
        metis.cross_shard_ratio < hash.cross_shard_ratio,
        "metis {} !< hash {}",
        metis.cross_shard_ratio,
        hash.cross_shard_ratio
    );
    // hashing scatters: with 4 shards a substantial share of
    // transactions must coordinate
    assert!(
        hash.cross_shard_ratio > 0.25,
        "hash cross ratio suspiciously low: {}",
        hash.cross_shard_ratio
    );
    // both systems still make progress: the vast majority commits
    for (name, r) in [("hash", hash), ("metis", metis)] {
        assert!(
            r.committed as f64 >= 0.95 * r.total_txs as f64,
            "{name}: committed {} of {}",
            r.committed,
            r.total_txs
        );
        assert_eq!(r.committed + r.failed, r.total_txs as u64, "{name}");
    }
}

#[test]
fn single_shard_commits_everything_with_zero_2pc_rounds() {
    let chain = history();
    let k = ShardCount::new(1).expect("non-zero");
    let result = RuntimeStudy::new(chain)
        .methods(vec![Method::Hash])
        .shard_counts(vec![k])
        .run();
    let report = result.get(Method::Hash, k).expect("ran");
    assert_eq!(report.committed as usize, chain.txs.len());
    assert_eq!(report.failed, 0);
    assert_eq!(report.cross_shard_txs, 0);
    assert_eq!(report.prepare_rounds, 0);
    assert_eq!(report.aborted_rounds, 0);
    assert_eq!(report.per_shard.len(), 1);
}

#[test]
fn runtime_reports_are_deterministic() {
    let chain = history();
    let run = || {
        RuntimeStudy::new(chain)
            .methods(vec![Method::Hash, Method::Metis])
            .shard_counts(vec![ShardCount::TWO])
            .seed(99)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.runs.len(), b.runs.len());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.method, rb.method);
        assert_eq!(ra.report, rb.report, "{} k={}", ra.method, ra.k);
    }
}

#[test]
fn latency_rises_with_network_latency() {
    let chain = history();
    let k = ShardCount::TWO;
    let run = |latency| {
        RuntimeStudy::new(chain)
            .methods(vec![Method::Hash])
            .shard_counts(vec![k])
            .net_latency_us(latency)
            .run()
    };
    let fast = run(1_000);
    let slow = run(20_000);
    let fast = fast.get(Method::Hash, k).expect("ran");
    let slow = slow.get(Method::Hash, k).expect("ran");
    assert!(
        slow.p99_commit_latency_us > fast.p99_commit_latency_us,
        "p99 {} !> {}",
        slow.p99_commit_latency_us,
        fast.p99_commit_latency_us
    );
}
