//! The five paper methods as a closed enum — now a thin compatibility
//! alias over the open strategy API in [`crate::strategy`].

use blockpart_partition::Partitioner;
use blockpart_shard::SimulatorConfig;
use blockpart_types::ShardCount;
use serde::{Deserialize, Serialize};

use crate::strategy::{canonical_partitioner, canonical_simulator_config};

/// One of the paper's five partitioning methods (§II-C).
///
/// The paper's Fig. 4 labels R-METIS as "P-METIS"; they are the same
/// method and [`Method::RMetis`] renders as `R-METIS`.
///
/// **Deprecated as an extension point:** this enum is closed; new code
/// should resolve strategies through
/// [`StrategyRegistry`](crate::StrategyRegistry) and run them with
/// [`Experiment`](crate::Experiment), which accept user-registered and
/// parameterized strategies. `Method` remains for existing call sites and
/// delegates its configurations to the registry's canonical built-ins, so
/// both paths produce identical results.
///
/// # Examples
///
/// ```
/// use blockpart_core::Method;
///
/// assert_eq!(Method::TrMetis.label(), "TR-METIS");
/// assert_eq!(Method::ALL.len(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// `hash(id) mod k`: perfect static balance, no moves, heavy cut.
    Hash,
    /// Distributed Kernighan–Lin with an oracle probability matrix.
    Kl,
    /// Periodic multilevel partitioning of the full cumulative graph.
    Metis,
    /// Periodic multilevel partitioning of the two-week reduced graph.
    RMetis,
    /// Threshold-triggered multilevel partitioning of the reduced graph.
    TrMetis,
}

impl Method {
    /// All methods in the paper's presentation order.
    pub const ALL: [Method; 5] = [
        Method::Hash,
        Method::Kl,
        Method::Metis,
        Method::RMetis,
        Method::TrMetis,
    ];

    /// The display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::Hash => "HASH",
            Method::Kl => "KL",
            Method::Metis => "METIS",
            Method::RMetis => "R-METIS",
            Method::TrMetis => "TR-METIS",
        }
    }

    /// The canonical simulator configuration for this method at `k`
    /// shards: placement rule, repartition policy and scope per the
    /// paper's description (4-hour windows, two-week periods).
    ///
    /// Delegates to the canonical strategy spec the registry ships for
    /// this method.
    pub fn simulator_config(self, k: ShardCount) -> SimulatorConfig {
        canonical_simulator_config(self, k)
    }

    /// Constructs the partitioner backing this method, seeded for
    /// reproducibility.
    ///
    /// Delegates to the canonical strategy spec the registry ships for
    /// this method.
    pub fn partitioner(self, seed: u64) -> Box<dyn Partitioner> {
        canonical_partitioner(self, seed)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_shard::{PlacementRule, RepartitionPolicy, RepartitionScope};

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn hash_never_repartitions() {
        let cfg = Method::Hash.simulator_config(ShardCount::TWO);
        assert_eq!(cfg.policy, RepartitionPolicy::Never);
        assert_eq!(cfg.placement, PlacementRule::Hash);
    }

    #[test]
    fn metis_family_uses_min_cut_placement() {
        for m in [Method::Metis, Method::RMetis, Method::TrMetis] {
            assert_eq!(
                m.simulator_config(ShardCount::TWO).placement,
                PlacementRule::MinCut,
                "{m}"
            );
        }
    }

    #[test]
    fn reduced_scope_for_r_and_tr() {
        assert_eq!(
            Method::Metis.simulator_config(ShardCount::TWO).scope,
            RepartitionScope::Full
        );
        for m in [Method::RMetis, Method::TrMetis] {
            assert_eq!(
                m.simulator_config(ShardCount::TWO).scope,
                RepartitionScope::Window,
                "{m}"
            );
        }
    }

    #[test]
    fn partitioner_names() {
        assert_eq!(Method::Hash.partitioner(0).name(), "hash");
        assert_eq!(Method::Kl.partitioner(0).name(), "kl");
        assert_eq!(Method::Metis.partitioner(0).name(), "metis");
    }
}
