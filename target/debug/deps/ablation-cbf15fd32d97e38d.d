/root/repo/target/debug/deps/ablation-cbf15fd32d97e38d.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-cbf15fd32d97e38d.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
