//! Account and contract addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 20-byte Ethereum-style address identifying an account or a contract.
///
/// Addresses are opaque identifiers: the graph layer maps them to dense
/// vertex indices, and the partitioners only ever hash or compare them.
///
/// # Examples
///
/// ```
/// use blockpart_types::Address;
///
/// let a = Address::from_index(7);
/// let b = Address::from_bytes([0u8; 20]);
/// assert_ne!(a, b);
/// assert_eq!(a.to_string().len(), 2 + 40); // "0x" + 40 hex digits
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Address([u8; 20]);

impl Address {
    /// The all-zero address, used as the "creation" pseudo-target in traces.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Creates an address from raw bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Creates a deterministic address from a dense index.
    ///
    /// The index is mixed through a 64-bit finalizer so that consecutive
    /// indices do not produce addresses that are trivially close in hash
    /// space, then stored (together with the raw index) in the byte array.
    /// [`Address::index`] recovers the raw index.
    pub fn from_index(index: u64) -> Self {
        let mut bytes = [0u8; 20];
        bytes[..8].copy_from_slice(&mix64(index).to_be_bytes());
        bytes[12..20].copy_from_slice(&index.to_be_bytes());
        Address(bytes)
    }

    /// Returns the dense index this address was created from, if it was
    /// created by [`Address::from_index`].
    ///
    /// For addresses created from arbitrary bytes the value is whatever the
    /// last eight bytes decode to.
    pub fn index(&self) -> u64 {
        let mut idx = [0u8; 8];
        idx.copy_from_slice(&self.0[12..20]);
        u64::from_be_bytes(idx)
    }

    /// Returns the raw bytes of the address.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// A stable 64-bit hash of the address, independent of the process.
    ///
    /// Used by hash partitioning so that shard placement is reproducible
    /// across runs and platforms.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over the 20 bytes, then a 64-bit avalanche.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        mix64(h)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({self})")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<[u8; 20]> for Address {
    fn from(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }
}

/// Whether a vertex of the blockchain graph is an externally-owned account
/// or a smart contract.
///
/// The distinction matters for the simulator: moving a contract between
/// shards relocates its whole storage, while moving an account relocates a
/// fixed-size balance record.
///
/// # Examples
///
/// ```
/// use blockpart_types::AccountKind;
///
/// assert!(AccountKind::Contract.is_contract());
/// assert!(!AccountKind::ExternallyOwned.is_contract());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccountKind {
    /// A user-controlled account (EOA): it only holds a balance and a nonce.
    #[default]
    ExternallyOwned,
    /// A smart contract with code and key-value storage.
    Contract,
}

impl AccountKind {
    /// Returns `true` for [`AccountKind::Contract`].
    pub const fn is_contract(self) -> bool {
        matches!(self, AccountKind::Contract)
    }
}

impl fmt::Display for AccountKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountKind::ExternallyOwned => f.write_str("eoa"),
            AccountKind::Contract => f.write_str("contract"),
        }
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn from_index_roundtrip() {
        for i in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            assert_eq!(Address::from_index(i).index(), i);
        }
    }

    #[test]
    fn from_index_distinct() {
        let set: HashSet<_> = (0..10_000).map(Address::from_index).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn display_format() {
        let a = Address::from_bytes([0xab; 20]);
        let s = a.to_string();
        assert!(s.starts_with("0x"));
        assert_eq!(s.len(), 42);
        assert!(s[2..].chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Address::ZERO).is_empty());
    }

    #[test]
    fn stable_hash_is_deterministic_and_spread() {
        let h1 = Address::from_index(1).stable_hash();
        let h2 = Address::from_index(1).stable_hash();
        assert_eq!(h1, h2);

        // Hashes of consecutive indices should differ in low bits (the
        // property hash partitioning relies on for modulo-k spread).
        let mut counts = [0usize; 8];
        for i in 0..8_000 {
            counts[(Address::from_index(i).stable_hash() % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "unbalanced bucket: {counts:?}");
        }
    }

    #[test]
    fn zero_address() {
        assert_eq!(Address::ZERO.as_bytes(), &[0u8; 20]);
        assert_eq!(Address::ZERO.index(), 0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(AccountKind::ExternallyOwned.to_string(), "eoa");
        assert_eq!(AccountKind::Contract.to_string(), "contract");
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Address::from_bytes([1; 20]);
        let b = Address::from_bytes([2; 20]);
        assert!(a < b);
    }
}
