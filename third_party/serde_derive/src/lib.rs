//! No-op `Serialize`/`Deserialize` derives for offline builds.
//!
//! The workspace only uses serde for derive annotations; nothing calls a
//! serializer at runtime, so expanding to nothing is sufficient.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]` and swallows
/// `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]` and swallows
/// `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
