/root/repo/target/debug/deps/crossbeam-0369be2fa7226ea5.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-0369be2fa7226ea5.rmeta: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
