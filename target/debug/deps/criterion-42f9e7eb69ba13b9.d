/root/repo/target/debug/deps/criterion-42f9e7eb69ba13b9.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-42f9e7eb69ba13b9.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
