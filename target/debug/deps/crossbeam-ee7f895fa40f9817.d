/root/repo/target/debug/deps/crossbeam-ee7f895fa40f9817.d: third_party/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-ee7f895fa40f9817: third_party/crossbeam/src/lib.rs

third_party/crossbeam/src/lib.rs:
