/root/repo/target/debug/deps/blockpart_shard-c1f552e098bc7555.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_shard-c1f552e098bc7555.rmeta: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs Cargo.toml

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
