/root/repo/target/release/deps/blockpart_bench-3a8cfb2861c94c25.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libblockpart_bench-3a8cfb2861c94c25.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libblockpart_bench-3a8cfb2861c94c25.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
