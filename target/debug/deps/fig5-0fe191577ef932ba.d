/root/repo/target/debug/deps/fig5-0fe191577ef932ba.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-0fe191577ef932ba: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
