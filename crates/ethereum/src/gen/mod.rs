//! Era-driven synthetic workload generation.
//!
//! The generator replays the shape of Ethereum's first 30 months
//! documented in the paper's Fig. 1: exponential growth through 2015–2016,
//! the September–October 2016 attack that inflated the vertex count by an
//! order of magnitude with one-shot dummy accounts, and the super-linear
//! ICO-driven growth of 2017. [`EraTimeline::ethereum_history`] encodes
//! the timeline, [`Population`] models heavy-tailed account/contract
//! popularity (preferential attachment + template-specific behaviour) and
//! [`ChainGenerator`] drives transactions through the EVM to produce the
//! interaction log.

mod era;
mod generator;
mod inject;
mod workload;

pub use era::{Era, EraTimeline, TxMix};
pub use generator::{BlockSink, ChainGenerator, GeneratorConfig};
pub use inject::{
    derive_seed, AaBatchInjector, DexArbInjector, DummySpamInjector, HubBurstInjector, InjectCtx,
    NftMintInjector, Pacer, PhaseShiftInjector, Span, TrafficInjector,
};
pub use workload::Population;
