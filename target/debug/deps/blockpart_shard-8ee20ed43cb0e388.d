/root/repo/target/debug/deps/blockpart_shard-8ee20ed43cb0e388.d: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_shard-8ee20ed43cb0e388.rmeta: crates/shard/src/lib.rs crates/shard/src/cost.rs crates/shard/src/placement.rs crates/shard/src/policy.rs crates/shard/src/simulator.rs crates/shard/src/state.rs Cargo.toml

crates/shard/src/lib.rs:
crates/shard/src/cost.rs:
crates/shard/src/placement.rs:
crates/shard/src/policy.rs:
crates/shard/src/simulator.rs:
crates/shard/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
