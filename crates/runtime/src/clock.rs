//! The deterministic event clock.
//!
//! All engine activity flows through one priority queue keyed by
//! `(virtual time, sequence number)`. Sequence numbers are handed out in
//! a deterministic order by the engine loop, so two runs with the same
//! inputs process events identically — regardless of how many worker
//! threads execute each batch.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use blockpart_types::ShardId;

use crate::event::Event;

/// Virtual time in microseconds since the start of the replay.
pub type Micros = u64;

struct Scheduled {
    time: Micros,
    seq: u64,
    shard: ShardId,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest first
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The engine's event queue.
///
/// # Examples
///
/// ```
/// use blockpart_runtime::clock::EventQueue;
/// use blockpart_runtime::event::{Event, TxId};
/// use blockpart_types::ShardId;
///
/// let mut q = EventQueue::new();
/// q.push(20, ShardId::new(1), Event::Arrival(TxId(1)));
/// q.push(10, ShardId::new(0), Event::Arrival(TxId(0)));
/// let (t, batch) = q.pop_batch().unwrap();
/// assert_eq!(t, 10);
/// assert_eq!(batch.len(), 1);
/// ```
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` on `shard` at absolute virtual time `time`.
    /// Insertion order breaks ties at equal times.
    pub fn push(&mut self, time: Micros, shard: ShardId, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            shard,
            event,
        });
    }

    /// Pops every event scheduled at the earliest pending instant, in
    /// insertion order. Returns `None` when the queue is empty.
    pub fn pop_batch(&mut self) -> Option<(Micros, Vec<(ShardId, Event)>)> {
        let first = self.heap.pop()?;
        let time = first.time;
        let mut batch = vec![(first.shard, first.event)];
        while let Some(next) = self.heap.peek() {
            if next.time != time {
                break;
            }
            let next = self.heap.pop().expect("peeked");
            batch.push((next.shard, next.event));
        }
        Some((time, batch))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TxId;

    #[test]
    fn batches_group_equal_times_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, ShardId::new(1), Event::Arrival(TxId(1)));
        q.push(5, ShardId::new(0), Event::Arrival(TxId(0)));
        q.push(9, ShardId::new(0), Event::Arrival(TxId(2)));
        let (t, batch) = q.pop_batch().unwrap();
        assert_eq!(t, 5);
        let ids: Vec<u16> = batch.iter().map(|(s, _)| s.as_u16()).collect();
        assert_eq!(ids, vec![1, 0]); // insertion order, not shard order
        let (t2, batch2) = q.pop_batch().unwrap();
        assert_eq!((t2, batch2.len()), (9, 1));
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ShardId::new(0), Event::Arrival(TxId(0)));
        assert_eq!(q.len(), 1);
    }
}
