//! Integration tests for the open strategy API: registry round-trips,
//! parity between the unified `Experiment` pipeline and the legacy
//! `Study`/`RuntimeStudy` drivers, and assignment-totality properties
//! for every registered strategy.

use std::sync::Arc;

use blockpart::core::{Experiment, Method, RuntimeStudy, StrategyRegistry, StrategySpec, Study};
use blockpart::ethereum::gen::{ChainGenerator, GeneratorConfig};
use blockpart::graph::Csr;
use blockpart::partition::{Partition, PartitionRequest, Partitioner};
use blockpart::shard::{PlacementRule, RepartitionPolicy, SimulatorConfig};
use blockpart::types::{Duration, ShardCount};
use proptest::prelude::*;

fn k(n: u16) -> ShardCount {
    ShardCount::new(n).expect("non-zero")
}

/// A strategy defined entirely outside the `blockpart-*` crates: round
/// robin over dense vertex indices, repartitioned daily.
struct RoundRobin;

struct RoundRobinPartitioner;

impl Partitioner for RoundRobinPartitioner {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn partition(&mut self, req: &PartitionRequest<'_>) -> Partition {
        let assignment: Vec<u16> = (0..req.csr.node_count())
            .map(|v| (v % req.k.as_usize()) as u16)
            .collect();
        Partition::from_assignment(assignment, req.k).expect("shards within k")
    }
}

impl StrategySpec for RoundRobin {
    fn name(&self) -> &str {
        "ROUND-ROBIN"
    }

    fn build_partitioner(&self, _seed: u64) -> Box<dyn Partitioner> {
        Box::new(RoundRobinPartitioner)
    }

    fn simulator_config(&self, k: ShardCount) -> SimulatorConfig {
        SimulatorConfig::new(k)
            .with_placement(PlacementRule::Hash)
            .with_policy(RepartitionPolicy::Periodic {
                interval: Duration::days(1),
            })
    }
}

/// Satellite acceptance: a custom (non-paper) strategy registers and
/// runs end-to-end — offline metrics and 2PC replay — through the same
/// pipeline as the built-ins, without modifying any `blockpart-*` crate.
#[test]
fn registry_round_trip_custom_strategy_end_to_end() {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(13)).generate();
    let mut registry = StrategyRegistry::with_builtins();
    registry.register(
        "round-robin",
        "dense-index round robin",
        Arc::new(RoundRobin),
    );

    let report = Experiment::over_chain(&chain)
        .named_strategies(&registry, "hash,round-robin")
        .expect("both resolve")
        .shard_counts(vec![k(2)])
        .replay(true)
        .seed(5)
        .run();

    let offline = report
        .offline("round-robin", k(2))
        .expect("offline stage ran");
    assert!(offline.repartitions > 0, "daily policy should fire");
    let runtime = report.runtime("round-robin", k(2)).expect("replay ran");
    assert_eq!(runtime.total_txs, chain.txs.len());
    assert!(runtime.committed > 0);
    // the custom strategy flows into rendering and serialization too
    assert!(report
        .offline_table()
        .render_ascii()
        .contains("ROUND-ROBIN"));
    let json = report.to_json();
    assert!(json.contains("\"strategy\":\"ROUND-ROBIN\""), "{json}");
    assert!(json.contains("\"runtime\":"), "{json}");
}

/// Satellite acceptance: the unified pipeline reproduces the legacy
/// `Study` numbers for HASH and METIS at k = 2 on the seed workload.
#[test]
fn experiment_reproduces_study_numbers() {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(17)).generate();
    let registry = StrategyRegistry::with_builtins();

    let legacy = Study::new(&chain.log)
        .methods(vec![Method::Hash, Method::Metis])
        .shard_counts(vec![k(2)])
        .seed(17)
        .run();
    let unified = Experiment::over_log(&chain.log)
        .named_strategies(&registry, "hash,metis")
        .expect("resolve")
        .shard_counts(vec![k(2)])
        .seed(17)
        .run();

    for m in [Method::Hash, Method::Metis] {
        let a = legacy.get(m, k(2)).expect("legacy ran");
        let b = unified.offline(m.label(), k(2)).expect("unified ran");
        assert_eq!(a.total_moves, b.total_moves, "{m}");
        assert_eq!(a.repartitions, b.repartitions, "{m}");
        assert_eq!(a.vertex_count, b.vertex_count, "{m}");
        assert_eq!(a.edge_count, b.edge_count, "{m}");
        assert_eq!(a.windows, b.windows, "{m}: per-window series differ");
    }
}

/// Same parity for the execution-level comparison: `RuntimeStudy` and
/// `Experiment` with replay produce identical `RuntimeReport`s.
#[test]
fn experiment_reproduces_runtime_study_numbers() {
    let chain = ChainGenerator::new(GeneratorConfig::test_scale(19)).generate();
    let registry = StrategyRegistry::with_builtins();

    let legacy = RuntimeStudy::new(&chain)
        .methods(vec![Method::Hash, Method::Metis])
        .shard_counts(vec![k(2)])
        .seed(19)
        .run();
    let unified = Experiment::over_chain(&chain)
        .named_strategies(&registry, "hash,metis")
        .expect("resolve")
        .shard_counts(vec![k(2)])
        .seed(19)
        .offline(false)
        .replay(true)
        .net_latency_us(1_000)
        .inter_arrival_us(500)
        .run();

    for m in [Method::Hash, Method::Metis] {
        let a = legacy.get(m, k(2)).expect("legacy ran");
        let b = unified.runtime(m.label(), k(2)).expect("unified ran");
        assert_eq!(a, b, "{m}: runtime reports differ");
    }
}

/// Random undirected edge lists over up to `max_nodes` vertices.
fn edges_strategy(max_nodes: u32) -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 1..50u64)
            .prop_filter("no self-loops", |(u, v, _)| u != v)
            .prop_map(|(u, v, w)| (u, v, w));
        (Just(n as usize), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Satellite acceptance: every registered strategy yields a *total*
    // assignment — every vertex placed, every shard id < k.
    #[test]
    fn every_registered_strategy_yields_total_assignment(
        (n, edges) in edges_strategy(48),
        kk in 2u16..=8,
        seed in 0u64..500,
    ) {
        let registry = StrategyRegistry::with_builtins();
        let csr = Csr::from_edges(n, &edges);
        let k = ShardCount::new(kk).unwrap();
        for name in registry.names() {
            let spec = registry.resolve(name).expect("registered name resolves");
            let mut partitioner = spec.build_partitioner(seed);
            let part = partitioner.partition(&PartitionRequest::new(&csr, k));
            prop_assert_eq!(part.len(), n, "{}: not total", name);
            for v in 0..n {
                prop_assert!(
                    k.contains(part.shard_of(v)),
                    "{}: vertex {} out of range", name, v
                );
            }
        }
    }
}
