//! Greedy k-way boundary refinement used during uncoarsening.

use blockpart_graph::Csr;
use blockpart_types::{ShardCount, ShardId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::partition::Partition;

/// The per-shard weight ceilings implied by an imbalance factor:
/// `ceil(total_weight / k · imbalance)`.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::multilevel::refine::max_shard_weights;
/// use blockpart_types::ShardCount;
///
/// let csr = Csr::from_edges(4, &[(0, 1, 1)]);
/// let max = max_shard_weights(&csr, ShardCount::TWO, 1.05);
/// assert_eq!(max, vec![3, 3]); // ceil(4 / 2 * 1.05) = 3
/// ```
pub fn max_shard_weights(csr: &Csr, k: ShardCount, imbalance: f64) -> Vec<u64> {
    let ideal = csr.total_vertex_weight() as f64 / k.as_usize() as f64;
    vec![(ideal * imbalance).ceil() as u64; k.as_usize()]
}

/// Greedy k-way refinement: repeatedly sweep the vertices in random order,
/// moving each to the shard it is most connected to, provided the move has
/// positive gain (or zero gain but improves balance) and the destination
/// stays under its weight ceiling.
///
/// Returns the total edge-weight gain over all passes. This is the
/// workhorse of uncoarsening: each pass is `O(V + E)`.
///
/// # Panics
///
/// Panics if `partition.len() != csr.node_count()` or
/// `max_weights.len() != k`.
///
/// # Examples
///
/// ```
/// use blockpart_graph::Csr;
/// use blockpart_partition::multilevel::refine::{kway_refine, max_shard_weights};
/// use blockpart_partition::Partition;
/// use blockpart_types::ShardCount;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let csr = Csr::from_edges(4, &[(0, 1, 9), (2, 3, 9), (1, 2, 1)]);
/// let mut p = Partition::from_assignment(vec![0, 1, 0, 1], ShardCount::TWO).unwrap();
/// let max = max_shard_weights(&csr, ShardCount::TWO, 1.2);
/// let mut rng = SmallRng::seed_from_u64(0);
/// let gain = kway_refine(&csr, &mut p, &max, 8, &mut rng);
/// assert!(gain > 0);
/// ```
pub fn kway_refine(
    csr: &Csr,
    partition: &mut Partition,
    max_weights: &[u64],
    max_passes: usize,
    rng: &mut SmallRng,
) -> i64 {
    let n = csr.node_count();
    let k = partition.shard_count().as_usize();
    assert_eq!(partition.len(), n, "partition length mismatch");
    assert_eq!(max_weights.len(), k, "max_weights length mismatch");
    if n == 0 || k < 2 {
        return 0;
    }

    let mut shard_weights = partition.shard_weights(csr.vertex_weights());
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut conn = vec![0u64; k];
    let mut total_gain = 0i64;

    for _ in 0..max_passes {
        order.shuffle(rng);
        let mut pass_gain = 0i64;
        let mut moved = 0usize;
        for &v in &order {
            let v = v as usize;
            if csr.degree(v) == 0 {
                continue;
            }
            for c in conn.iter_mut() {
                *c = 0;
            }
            for (u, w) in csr.neighbors(v) {
                conn[partition.shard_of(u as usize).as_usize()] += w;
            }
            let home = partition.shard_of(v).as_usize();
            let vw = csr.vertex_weight(v);

            let mut best: Option<(usize, i64)> = None;
            for t in 0..k {
                if t == home || shard_weights[t] + vw > max_weights[t] {
                    continue;
                }
                let gain = conn[t] as i64 - conn[home] as i64;
                let candidate_better = match best {
                    None => true,
                    Some((bt, bg)) => {
                        gain > bg || (gain == bg && shard_weights[t] < shard_weights[bt])
                    }
                };
                if candidate_better {
                    best = Some((t, gain));
                }
            }
            if let Some((t, gain)) = best {
                let improves_balance = shard_weights[t] + vw < shard_weights[home];
                if gain > 0 || (gain == 0 && improves_balance) {
                    shard_weights[home] -= vw;
                    shard_weights[t] += vw;
                    partition.assign(v, ShardId::new(t as u16));
                    pass_gain += gain;
                    moved += 1;
                }
            }
        }
        total_gain += pass_gain;
        if moved == 0 {
            break;
        }
    }
    total_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CutMetrics;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    fn k(n: u16) -> ShardCount {
        ShardCount::new(n).unwrap()
    }

    #[test]
    fn fixes_interleaved_partition() {
        // 4 cliques of 4; k = 4; start interleaved
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let b = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((b + i, b + j, 10));
                }
            }
        }
        // light ring between cliques
        for c in 0..4u32 {
            edges.push((c * 4, ((c + 1) % 4) * 4, 1));
        }
        let csr = Csr::from_edges(16, &edges);
        let assignment: Vec<u16> = (0..16).map(|v| (v % 4) as u16).collect();
        let mut p = Partition::from_assignment(assignment, k(4)).unwrap();
        let before = CutMetrics::compute(&csr, &p).cut_weight;
        let max = max_shard_weights(&csr, k(4), 1.1);
        let gain = kway_refine(&csr, &mut p, &max, 16, &mut rng());
        let after = CutMetrics::compute(&csr, &p).cut_weight;
        assert_eq!(before - after, gain as u64);
        assert!(after <= 8, "cut weight {after}");
    }

    #[test]
    fn respects_weight_ceilings() {
        // star: hub 0 connected to 9 leaves; ceilings prevent all vertices
        // from collapsing onto the hub's shard.
        let edges: Vec<(u32, u32, u64)> = (1..10).map(|i| (0, i, 5)).collect();
        let csr = Csr::from_edges(10, &edges);
        let assignment: Vec<u16> = (0..10).map(|v| (v % 2) as u16).collect();
        let mut p = Partition::from_assignment(assignment, k(2)).unwrap();
        let max = max_shard_weights(&csr, k(2), 1.2); // ceil(5 * 1.2) = 6
        kway_refine(&csr, &mut p, &max, 8, &mut rng());
        let weights = p.shard_weights(csr.vertex_weights());
        assert!(weights.iter().all(|&w| w <= 6), "weights {weights:?}");
    }

    #[test]
    fn no_moves_on_optimal() {
        let csr = Csr::from_edges(4, &[(0, 1, 5), (2, 3, 5)]);
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1], k(2)).unwrap();
        let before = p.clone();
        let max = max_shard_weights(&csr, k(2), 1.5);
        let gain = kway_refine(&csr, &mut p, &max, 4, &mut rng());
        assert_eq!(gain, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn zero_gain_moves_require_balance_improvement() {
        // isolated-ish: two vertices connected, two singletons on shard 0
        let csr = Csr::from_edges(4, &[(0, 1, 1)]);
        let mut p = Partition::from_assignment(vec![0, 0, 0, 0], k(2)).unwrap();
        let max = max_shard_weights(&csr, k(2), 2.0);
        kway_refine(&csr, &mut p, &max, 4, &mut rng());
        // degree-0 vertices never move; connected pair stays together.
        assert_eq!(p.shard_of(0), p.shard_of(1));
    }

    #[test]
    fn k1_is_noop() {
        let csr = Csr::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut p = Partition::all_on_first(3, k(1));
        let max = max_shard_weights(&csr, k(1), 1.05);
        assert_eq!(kway_refine(&csr, &mut p, &max, 4, &mut rng()), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_partition_panics() {
        let csr = Csr::from_edges(3, &[(0, 1, 1)]);
        let mut p = Partition::all_on_first(2, k(2));
        let max = max_shard_weights(&csr, k(2), 1.05);
        let _ = kway_refine(&csr, &mut p, &max, 1, &mut rng());
    }
}
