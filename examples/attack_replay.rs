//! Replay the September–October 2016 dummy-account attack and reproduce
//! the paper's METIS anomaly: the attack floods the graph with one-shot
//! vertices, METIS balances vertex *counts*, and the shard holding the
//! real accounts ends up with nearly all the activity (dynamic balance
//! approaching k) — while R-METIS, which only looks at the recent window,
//! shrugs the dead vertices off.
//!
//! ```sh
//! cargo run --release --example attack_replay
//! ```

use blockpart::core::{Method, Study};
use blockpart::ethereum::gen::{ChainGenerator, Era, EraTimeline, GeneratorConfig, TxMix};
use blockpart::metrics::Table;
use blockpart::types::{Duration, ShardCount, Timestamp, Wei};

fn main() {
    // three weeks organic, two weeks of attack spam, three weeks organic
    let day = |d: u64| Timestamp::from_secs(d * 86_400);
    let timeline = EraTimeline::new(vec![
        Era {
            name: "organic",
            start: Timestamp::EPOCH,
            end: day(21),
            rate_start: 25_000.0,
            rate_end: 25_000.0,
            mix: TxMix::homestead(),
        },
        Era {
            name: "attack",
            start: day(21),
            end: day(35),
            rate_start: 250_000.0,
            rate_end: 250_000.0,
            mix: TxMix::attack(),
        },
        Era {
            name: "aftermath",
            start: day(35),
            end: day(56),
            rate_start: 25_000.0,
            rate_end: 25_000.0,
            mix: TxMix::homestead(),
        },
    ]);
    let config = GeneratorConfig {
        seed: 2016,
        scale: 0.004,
        timeline,
        block_interval: Duration::hours(4),
        endowment: Wei::new(1_000_000_000),
    };
    println!("replaying the 2016 attack (scale {})...", config.scale);
    let chain = ChainGenerator::new(config).generate();
    println!("  {} interactions\n", chain.log.len());

    let result = Study::new(&chain.log)
        .methods(vec![Method::Metis, Method::RMetis])
        .shard_counts(vec![ShardCount::TWO])
        .run();

    let mut table = Table::new(vec![
        "week",
        "METIS dyn-balance",
        "R-METIS dyn-balance",
        "METIS static-balance",
    ]);
    let metis = result.get(Method::Metis, ShardCount::TWO).expect("ran");
    let rmetis = result.get(Method::RMetis, ShardCount::TWO).expect("ran");
    for week in 0..8u64 {
        let (lo, hi) = (day(week * 7), day((week + 1) * 7));
        let mean = |r: &blockpart::shard::SimulationResult,
                    f: &dyn Fn(&blockpart::shard::WindowRecord) -> f64| {
            let ws: Vec<_> = r
                .windows_in(lo, hi)
                .iter()
                .filter(|w| w.events > 0)
                .collect();
            if ws.is_empty() {
                f64::NAN
            } else {
                ws.iter().map(|w| f(w)).sum::<f64>() / ws.len() as f64
            }
        };
        table.row(vec![
            format!(
                "{}{}",
                week + 1,
                if (3..5).contains(&week) {
                    " (attack)"
                } else {
                    ""
                }
            ),
            format!("{:.2}", mean(metis, &|w| w.dynamic_balance)),
            format!("{:.2}", mean(rmetis, &|w| w.dynamic_balance)),
            format!("{:.2}", mean(metis, &|w| w.static_balance)),
        ]);
    }
    println!("{}", table.render_ascii());
    println!(
        "METIS moves: {}   R-METIS moves: {}",
        metis.total_moves, rmetis.total_moves
    );
}
