/root/repo/target/debug/deps/blockpart_core-9f67e4c8c4cf72c8.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libblockpart_core-9f67e4c8c4cf72c8.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
