/root/repo/target/debug/deps/blockpart-6b49d1630a0a7275.d: src/bin/blockpart.rs

/root/repo/target/debug/deps/libblockpart-6b49d1630a0a7275.rmeta: src/bin/blockpart.rs

src/bin/blockpart.rs:
