/root/repo/target/debug/deps/fig4-7fb2f7997664c427.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-7fb2f7997664c427: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
