/root/repo/target/debug/deps/ablations-a9f7eaf48c47ae67.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-a9f7eaf48c47ae67.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
