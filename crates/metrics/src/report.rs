//! Plain-text table rendering for the bench binaries.

use std::fmt;

/// A simple column-aligned table with ASCII and CSV renderers.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::Table;
///
/// let mut t = Table::new(vec!["method", "edge-cut"]);
/// t.row(vec!["hash".into(), "0.50".into()]);
/// t.row(vec!["metis".into(), "0.05".into()]);
/// let ascii = t.render_ascii();
/// assert!(ascii.contains("method"));
/// assert_eq!(t.render_csv().lines().count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded, space-separated columns and a separator rule.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Renders as comma-separated values, header first. Cells containing
    /// commas or quotes are quoted.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "y".into()]);
        let s = t.render_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // columns align: header 'bbbb' starts at same offset as 'y'
        assert_eq!(lines[0].find("bbbb"), lines[2].find('y'));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["has,comma".into()]);
        t.row(vec!["has\"quote".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.render_ascii().contains("only"));
        assert_eq!(t.render_csv(), "only\n");
    }

    #[test]
    fn display_matches_ascii() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["v".into()]);
        assert_eq!(t.to_string(), t.render_ascii());
    }
}
