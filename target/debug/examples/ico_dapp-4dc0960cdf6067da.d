/root/repo/target/debug/examples/ico_dapp-4dc0960cdf6067da.d: examples/ico_dapp.rs

/root/repo/target/debug/examples/ico_dapp-4dc0960cdf6067da: examples/ico_dapp.rs

examples/ico_dapp.rs:
