/root/repo/target/debug/deps/serde_derive-59eea42ac24c31f1.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-59eea42ac24c31f1.rmeta: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
