//! EVM-lite: a 64-bit stack machine whose side effects are the call edges
//! of the blockchain graph.
//!
//! The real EVM is a 256-bit machine with ~140 opcodes; the paper only
//! cares about *which accounts and contracts interact*. This VM keeps the
//! parts that shape the graph — value transfers, inter-contract calls,
//! contract creation, per-contract key/value storage, gas metering — and
//! drops everything else (memory, precompiles, 256-bit arithmetic).
//!
//! Contracts are [`Program`](crate::Program)s of [`Op`]s built from
//! templates ([`ContractTemplate`](crate::ContractTemplate)); executing a
//! transaction returns a [`Receipt`](crate::Receipt) whose
//! [`CallRecord`](crate::CallRecord)s become graph edges.

mod gas;
mod opcode;
mod vm;

pub use gas::GasSchedule;
pub use opcode::Op;
pub use vm::{ExecContext, Vm, VmError, CALL_DEPTH_LIMIT, STACK_LIMIT};
