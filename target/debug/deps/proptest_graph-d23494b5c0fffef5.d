/root/repo/target/debug/deps/proptest_graph-d23494b5c0fffef5.d: crates/graph/tests/proptest_graph.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_graph-d23494b5c0fffef5.rmeta: crates/graph/tests/proptest_graph.rs Cargo.toml

crates/graph/tests/proptest_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
