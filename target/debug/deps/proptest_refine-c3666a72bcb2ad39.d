/root/repo/target/debug/deps/proptest_refine-c3666a72bcb2ad39.d: crates/partition/tests/proptest_refine.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_refine-c3666a72bcb2ad39.rmeta: crates/partition/tests/proptest_refine.rs Cargo.toml

crates/partition/tests/proptest_refine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
