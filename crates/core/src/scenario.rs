//! The scenario registry: named, parameterized adversarial workloads.
//!
//! Mirrors the [`StrategyRegistry`](crate::StrategyRegistry) shape: a
//! [`ScenarioSpec`] turns a [`GeneratorConfig`] into a [`SyntheticChain`]
//! by composing [`TrafficInjector`]s over the organic timeline, and a
//! [`ScenarioRegistry`] resolves `name[key=value;...]` spec strings —
//! case-insensitively, ignoring `-`/`_`, with aliases and user
//! registration. The built-ins are the paper's anomalies and their
//! modern descendants: ICO hub bursts, dummy-account spam, DEX/arbitrage
//! bundles, account-abstraction batches, NFT mint stampedes and
//! phase-shifting hub mixes.
//!
//! Every scenario is deterministic and seedable: the same
//! `GeneratorConfig` always produces the same chain, and composing
//! scenarios adds their injected transaction counts exactly.

use std::sync::Arc;

use blockpart_ethereum::gen::{
    derive_seed, AaBatchInjector, ChainGenerator, DexArbInjector, DummySpamInjector,
    GeneratorConfig, HubBurstInjector, NftMintInjector, PhaseShiftInjector, Span, TrafficInjector,
};
use blockpart_ethereum::SyntheticChain;
use blockpart_metrics::Table;
use blockpart_types::Timestamp;

use crate::strategy::{normalize_name, split_top_level, StrategyError, StrategyParams};

/// A named adversarial workload: a deterministic, seedable
/// transformation of the friendly synthetic chain.
///
/// Implementations return the [`TrafficInjector`]s to stack on the
/// organic generator; [`build`](ScenarioSpec::build) assembles and runs
/// the generator (override only for scenarios that are not
/// injector-shaped).
pub trait ScenarioSpec: Send + Sync {
    /// The scenario's display name. Registry-built scenarios embed
    /// their canonical parameters (`hub-burst[contracts=3]`) so the name
    /// round-trips as a report lookup key.
    fn name(&self) -> &str;

    /// The injectors this scenario stacks on `base`'s organic timeline
    /// (empty for the friendly baseline).
    fn injectors(&self, base: &GeneratorConfig) -> Vec<Box<dyn TrafficInjector>>;

    /// Generates the scenario's chain from `base`.
    fn build(&self, base: &GeneratorConfig) -> SyntheticChain {
        let mut generator = ChainGenerator::new(base.clone());
        for injector in self.injectors(base) {
            generator = generator.with_injector(injector);
        }
        generator.generate()
    }
}

/// The shared knobs every built-in scenario accepts: where in the
/// timeline the hostile span sits.
#[derive(Clone, Copy, Debug, Default)]
struct SpanParams {
    start: Option<blockpart_types::Duration>,
    duration: Option<blockpart_types::Duration>,
}

impl SpanParams {
    fn parse(params: &StrategyParams) -> Result<Self, StrategyError> {
        Ok(SpanParams {
            start: params.days("start")?,
            duration: params.days("duration")?,
        })
    }

    /// The active span: defaults to 35% into the timeline through the
    /// end, clamped to the timeline.
    fn span_of(self, base: &GeneratorConfig) -> Span {
        let total = base.timeline.end().as_secs();
        let start = self
            .start
            .map(|d| d.as_secs())
            .unwrap_or(total * 35 / 100)
            .min(total);
        let end = match self.duration {
            Some(d) => start.saturating_add(d.as_secs()).min(total),
            None => total,
        };
        Span::new(Timestamp::from_secs(start), Timestamp::from_secs(end))
    }
}

/// Which built-in workload a [`BuiltinScenario`] emits.
#[derive(Clone, Copy, Debug)]
enum ScenarioKind {
    /// The unmodified organic chain.
    Friendly,
    /// 2017-style ICO hub burst.
    HubBurst { contracts: usize, intensity: f64 },
    /// 2016-style dummy-account spam.
    DummySpam { intensity: f64 },
    /// DEX/arbitrage searcher bundles.
    DexArb {
        pools: usize,
        bundle: usize,
        intensity: f64,
    },
    /// Account-abstraction batched user-ops.
    AaBatch {
        bundlers: usize,
        batch: usize,
        intensity: f64,
    },
    /// NFT mint stampedes in short drop windows.
    NftMint { drops: usize, intensity: f64 },
    /// Phase-shifting hub mix (rotates hub identity mid-stream).
    PhaseShift { phases: usize, intensity: f64 },
}

/// A registry-built scenario: kind + span + display label.
#[derive(Clone, Debug)]
struct BuiltinScenario {
    label: String,
    kind: ScenarioKind,
    span: SpanParams,
}

impl ScenarioSpec for BuiltinScenario {
    fn name(&self) -> &str {
        &self.label
    }

    fn injectors(&self, base: &GeneratorConfig) -> Vec<Box<dyn TrafficInjector>> {
        let span = self.span.span_of(base);
        let seed = derive_seed(base.seed, &self.label);
        match self.kind {
            ScenarioKind::Friendly => Vec::new(),
            ScenarioKind::HubBurst {
                contracts,
                intensity,
            } => vec![Box::new(HubBurstInjector::new(
                seed, span, contracts, intensity,
            ))],
            ScenarioKind::DummySpam { intensity } => {
                vec![Box::new(DummySpamInjector::new(seed, span, intensity))]
            }
            ScenarioKind::DexArb {
                pools,
                bundle,
                intensity,
            } => vec![Box::new(DexArbInjector::new(
                seed, span, pools, bundle, intensity,
            ))],
            ScenarioKind::AaBatch {
                bundlers,
                batch,
                intensity,
            } => vec![Box::new(AaBatchInjector::new(
                seed, span, bundlers, batch, intensity,
            ))],
            ScenarioKind::NftMint { drops, intensity } => {
                vec![Box::new(NftMintInjector::new(seed, span, drops, intensity))]
            }
            ScenarioKind::PhaseShift { phases, intensity } => {
                vec![Box::new(PhaseShiftInjector::new(
                    seed, span, phases, intensity,
                ))]
            }
        }
    }
}

/// A composition of scenarios: concatenates every part's injectors, so
/// the composed chain carries each part's extra traffic additively.
pub struct ComposedScenario {
    label: String,
    parts: Vec<Arc<dyn ScenarioSpec>>,
}

impl ComposedScenario {
    /// Composes `parts` (label: the parts' names `+`-joined).
    pub fn new(parts: Vec<Arc<dyn ScenarioSpec>>) -> Self {
        let label = parts.iter().map(|p| p.name()).collect::<Vec<_>>().join("+");
        ComposedScenario { label, parts }
    }
}

impl ScenarioSpec for ComposedScenario {
    fn name(&self) -> &str {
        &self.label
    }

    fn injectors(&self, base: &GeneratorConfig) -> Vec<Box<dyn TrafficInjector>> {
        self.parts.iter().flat_map(|p| p.injectors(base)).collect()
    }
}

/// A scenario factory: builds a spec from parsed parameters.
pub type ScenarioFactory =
    dyn Fn(&StrategyParams) -> Result<Arc<dyn ScenarioSpec>, StrategyError> + Send + Sync;

enum EntryKind {
    Factory(Arc<ScenarioFactory>),
    /// Late-bound alias: normalized key of the target entry.
    Alias(String),
}

struct Entry {
    key: String,
    display: String,
    description: String,
    params_help: String,
    kind: EntryKind,
}

/// Name → scenario resolution, the workload-side mirror of
/// [`StrategyRegistry`](crate::StrategyRegistry).
///
/// Lookup is case-insensitive and ignores `-`/`_`; spec strings may
/// parameterize the scenario (`hub-burst[contracts=3;intensity=1.2]`).
///
/// # Examples
///
/// ```
/// use blockpart_core::ScenarioRegistry;
/// use blockpart_ethereum::gen::GeneratorConfig;
///
/// let reg = ScenarioRegistry::with_builtins();
/// let scenario = reg.resolve("hub-burst[contracts=3]").unwrap();
/// assert_eq!(scenario.name(), "hub-burst[contracts=3]");
/// let chain = scenario.build(&GeneratorConfig::test_scale(7).with_scale(0.005));
/// assert!(chain.log.len() > 0);
/// ```
pub struct ScenarioRegistry {
    entries: Vec<Entry>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("scenarios", &self.names())
            .finish()
    }
}

/// Builds the registry label for a built-in: the display name with the
/// canonical parameter string embedded when parameters were given.
fn label_of(display: &str, params: &StrategyParams) -> String {
    if params.is_empty() {
        display.to_string()
    } else {
        format!("{display}[{}]", params.canonical_string())
    }
}

impl ScenarioRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        ScenarioRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the built-in scenarios: the friendly baseline,
    /// the paper's two historical anomalies (`hub-burst`, `dummy-spam`)
    /// and their modern descendants (`dex-arb`, `aa-batch`, `nft-mint`,
    /// `phase-shift`).
    pub fn with_builtins() -> Self {
        let mut reg = ScenarioRegistry::empty();
        reg.register_factory(
            "friendly",
            "the unmodified organic chain (the paper's easy case)",
            "",
            |params| {
                params.ensure_known_as("scenario", "friendly", &[])?;
                Ok(Arc::new(BuiltinScenario {
                    label: "friendly".to_string(),
                    kind: ScenarioKind::Friendly,
                    span: SpanParams::default(),
                }))
            },
        );
        reg.register_alias("baseline", "friendly");
        reg.register_factory(
            "hub-burst",
            "2017-style ICO/token-mint burst: crowdsale hubs absorb traffic",
            "contracts=<n>, intensity=<f>, start=<days>, duration=<days>",
            |params| {
                let allowed = ["contracts", "intensity", "start", "duration"];
                params.ensure_known_as("scenario", "hub-burst", &allowed)?;
                Ok(Arc::new(BuiltinScenario {
                    label: label_of("hub-burst", params),
                    kind: ScenarioKind::HubBurst {
                        contracts: params.usize("contracts")?.unwrap_or(3),
                        intensity: params.f64("intensity")?.unwrap_or(0.9),
                    },
                    span: SpanParams::parse(params)?,
                }))
            },
        );
        reg.register_alias("ico-burst", "hub-burst");
        reg.register_factory(
            "dummy-spam",
            "2016-style attack: one-shot accounts inflate the vertex count",
            "intensity=<f>, start=<days>, duration=<days>",
            |params| {
                let allowed = ["intensity", "start", "duration"];
                params.ensure_known_as("scenario", "dummy-spam", &allowed)?;
                Ok(Arc::new(BuiltinScenario {
                    label: label_of("dummy-spam", params),
                    kind: ScenarioKind::DummySpam {
                        intensity: params.f64("intensity")?.unwrap_or(1.2),
                    },
                    span: SpanParams::parse(params)?,
                }))
            },
        );
        reg.register_factory(
            "dex-arb",
            "DEX/arbitrage searcher bundles stitching pools through bots",
            "pools=<n>, bundle=<n>, intensity=<f>, start=<days>, duration=<days>",
            |params| {
                let allowed = ["pools", "bundle", "intensity", "start", "duration"];
                params.ensure_known_as("scenario", "dex-arb", &allowed)?;
                Ok(Arc::new(BuiltinScenario {
                    label: label_of("dex-arb", params),
                    kind: ScenarioKind::DexArb {
                        pools: params.usize("pools")?.unwrap_or(6),
                        bundle: params.usize("bundle")?.unwrap_or(4),
                        intensity: params.f64("intensity")?.unwrap_or(0.5),
                    },
                    span: SpanParams::parse(params)?,
                }))
            },
        );
        reg.register_factory(
            "aa-batch",
            "account-abstraction batches: bundler entry points as super-hubs",
            "bundlers=<n>, batch=<n>, intensity=<f>, start=<days>, duration=<days>",
            |params| {
                let allowed = ["bundlers", "batch", "intensity", "start", "duration"];
                params.ensure_known_as("scenario", "aa-batch", &allowed)?;
                Ok(Arc::new(BuiltinScenario {
                    label: label_of("aa-batch", params),
                    kind: ScenarioKind::AaBatch {
                        bundlers: params.usize("bundlers")?.unwrap_or(4),
                        batch: params.usize("batch")?.unwrap_or(8),
                        intensity: params.f64("intensity")?.unwrap_or(0.5),
                    },
                    span: SpanParams::parse(params)?,
                }))
            },
        );
        reg.register_factory(
            "nft-mint",
            "NFT mint stampedes: fresh hubs appear in short drop windows",
            "drops=<n>, intensity=<f>, start=<days>, duration=<days>",
            |params| {
                let allowed = ["drops", "intensity", "start", "duration"];
                params.ensure_known_as("scenario", "nft-mint", &allowed)?;
                Ok(Arc::new(BuiltinScenario {
                    label: label_of("nft-mint", params),
                    kind: ScenarioKind::NftMint {
                        drops: params.usize("drops")?.unwrap_or(4),
                        intensity: params.f64("intensity")?.unwrap_or(3.0),
                    },
                    span: SpanParams::parse(params)?,
                }))
            },
        );
        reg.register_factory(
            "phase-shift",
            "hub identity rotates mid-stream: the TR-METIS trigger stressor",
            "phases=<n>, intensity=<f>, start=<days>, duration=<days>",
            |params| {
                let allowed = ["phases", "intensity", "start", "duration"];
                params.ensure_known_as("scenario", "phase-shift", &allowed)?;
                Ok(Arc::new(BuiltinScenario {
                    label: label_of("phase-shift", params),
                    kind: ScenarioKind::PhaseShift {
                        phases: params.usize("phases")?.unwrap_or(6),
                        intensity: params.f64("intensity")?.unwrap_or(0.9),
                    },
                    span: SpanParams::parse(params)?,
                }))
            },
        );
        reg
    }

    /// Registers a fixed scenario under `name`, replacing any existing
    /// entry with the same (normalized) name. The spec rejects
    /// parameters; use [`register_factory`](Self::register_factory) for
    /// parameterized scenarios.
    pub fn register(&mut self, name: &str, description: &str, spec: Arc<dyn ScenarioSpec>) {
        let owned_name = name.to_string();
        self.register_factory(name, description, "", move |params| {
            params.ensure_known_as("scenario", &owned_name, &[])?;
            Ok(Arc::clone(&spec))
        });
    }

    /// Registers a parameterized scenario factory under `name`,
    /// replacing any existing entry with the same (normalized) name.
    pub fn register_factory(
        &mut self,
        name: &str,
        description: &str,
        params_help: &str,
        factory: impl Fn(&StrategyParams) -> Result<Arc<dyn ScenarioSpec>, StrategyError>
            + Send
            + Sync
            + 'static,
    ) {
        let key = normalize_name(name);
        assert!(!key.is_empty(), "scenario name must be non-empty");
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            display: name.trim().to_string(),
            description: description.to_string(),
            params_help: params_help.to_string(),
            kind: EntryKind::Factory(Arc::new(factory)),
        });
    }

    /// Registers `alias` to resolve exactly like `target` (late-bound:
    /// re-registering `target` retargets the alias too).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not registered.
    pub fn register_alias(&mut self, alias: &str, target: &str) {
        let target_entry = self
            .entry(target)
            .unwrap_or_else(|| panic!("alias target `{target}` is not registered"));
        let description = format!("alias of {}", target_entry.display);
        let target_key = target_entry.key.clone();
        let key = normalize_name(alias);
        assert!(!key.is_empty(), "scenario name must be non-empty");
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            display: alias.trim().to_string(),
            description,
            params_help: String::new(),
            kind: EntryKind::Alias(target_key),
        });
    }

    fn entry(&self, name: &str) -> Option<&Entry> {
        let key = normalize_name(name);
        self.entries.iter().find(|e| e.key == key)
    }

    /// `true` when `name` resolves (ignoring parameters).
    pub fn contains(&self, name: &str) -> bool {
        self.entry(name).is_some()
    }

    /// The registered scenario names in registration order, aliases
    /// included.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.display.as_str()).collect()
    }

    /// The display names of the registered factories (no aliases), in
    /// registration order — "every built-in scenario" for sweeps.
    pub fn factory_names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::Factory(_)))
            .map(|e| e.display.as_str())
            .collect()
    }

    /// Resolves one spec string: `name` or `name[key=value;key=value]`.
    pub fn resolve(&self, spec: &str) -> Result<Arc<dyn ScenarioSpec>, StrategyError> {
        let spec = spec.trim();
        let (name, params) = match spec.split_once('[') {
            None => (spec, StrategyParams::default()),
            Some((name, rest)) => {
                let Some(body) = rest.strip_suffix(']') else {
                    return Err(StrategyError::new(format!(
                        "unclosed `[` in scenario spec `{spec}`"
                    )));
                };
                (name.trim(), StrategyParams::parse(body)?)
            }
        };
        let Some(entry) = self.entry(name) else {
            return Err(StrategyError::new(format!(
                "unknown scenario `{name}` (registered: {})",
                self.names().join(", ")
            )));
        };
        (self.factory_of(entry)?)(&params)
    }

    /// The factory behind an entry, following one alias hop.
    fn factory_of<'e>(&'e self, entry: &'e Entry) -> Result<&'e ScenarioFactory, StrategyError> {
        match &entry.kind {
            EntryKind::Factory(f) => Ok(f.as_ref()),
            EntryKind::Alias(target_key) => {
                let target = self.entries.iter().find(|e| e.key == *target_key);
                match target.map(|e| &e.kind) {
                    Some(EntryKind::Factory(f)) => Ok(f.as_ref()),
                    _ => Err(StrategyError::new(format!(
                        "alias `{}` points at `{target_key}`, which is no longer registered",
                        entry.display
                    ))),
                }
            }
        }
    }

    /// Resolves a comma-separated list of spec strings (commas inside
    /// `[...]` do not split); `all` expands to every registered factory
    /// unless a scenario was registered under that name. An empty list
    /// is an error.
    pub fn resolve_list(&self, specs: &str) -> Result<Vec<Arc<dyn ScenarioSpec>>, StrategyError> {
        let mut out: Vec<Arc<dyn ScenarioSpec>> = Vec::new();
        for part in split_top_level(specs) {
            if normalize_name(&part) == "all" && !self.contains("all") {
                for name in self.factory_names() {
                    out.push(self.resolve(name)?);
                }
            } else {
                out.push(self.resolve(&part)?);
            }
        }
        if out.is_empty() {
            return Err(StrategyError::new(format!(
                "empty scenario list `{specs}` (registered: {})",
                self.names().join(", ")
            )));
        }
        Ok(out)
    }

    /// Resolves a `+`-separated composition (`hub-burst+dummy-spam`)
    /// into a single scenario; a lone spec resolves directly.
    pub fn compose(&self, specs: &str) -> Result<Arc<dyn ScenarioSpec>, StrategyError> {
        let parts: Vec<&str> = specs.split('+').filter(|p| !p.trim().is_empty()).collect();
        match parts.len() {
            0 => Err(StrategyError::new(format!(
                "empty scenario spec `{specs}` (registered: {})",
                self.names().join(", ")
            ))),
            1 => self.resolve(parts[0]),
            _ => {
                let resolved = parts
                    .iter()
                    .map(|p| self.resolve(p))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Arc::new(ComposedScenario::new(resolved)))
            }
        }
    }

    /// Renders the registry as a help table (scenario, parameters,
    /// description).
    pub fn help_table(&self) -> Table {
        let mut t = Table::new(vec!["scenario", "parameters", "description"]);
        for e in &self.entries {
            let params_help = match &e.kind {
                EntryKind::Factory(_) => e.params_help.clone(),
                EntryKind::Alias(target_key) => self
                    .entries
                    .iter()
                    .find(|t| t.key == *target_key)
                    .map(|t| t.params_help.clone())
                    .unwrap_or_default(),
            };
            t.row(vec![e.display.clone(), params_help, e.description.clone()]);
        }
        t
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        ScenarioRegistry::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GeneratorConfig {
        GeneratorConfig::test_scale(17).with_scale(0.005)
    }

    /// `unwrap_err` needs `T: Debug`, which trait objects don't have.
    fn err_of(r: Result<Arc<dyn ScenarioSpec>, StrategyError>) -> String {
        match r {
            Err(e) => e.to_string(),
            Ok(s) => panic!("unexpectedly resolved `{}`", s.name()),
        }
    }

    #[test]
    fn builtins_register_the_advertised_scenarios() {
        let reg = ScenarioRegistry::with_builtins();
        for name in [
            "friendly",
            "hub-burst",
            "dummy-spam",
            "dex-arb",
            "aa-batch",
            "nft-mint",
            "phase-shift",
        ] {
            assert!(reg.contains(name), "{name} missing");
        }
        assert!(reg.factory_names().len() >= 7);
        // aliases resolve but are not factories
        assert!(reg.contains("baseline"));
        assert!(reg.contains("ico-burst"));
        assert!(!reg.factory_names().contains(&"baseline"));
    }

    #[test]
    fn lookup_is_case_and_dash_insensitive() {
        let reg = ScenarioRegistry::with_builtins();
        for spelling in ["hub-burst", "HUB_BURST", "hubburst"] {
            assert_eq!(reg.resolve(spelling).unwrap().name(), "hub-burst");
        }
    }

    #[test]
    fn labels_embed_canonical_params() {
        let reg = ScenarioRegistry::with_builtins();
        let s = reg.resolve("hub-burst[intensity=1.5;contracts=2]").unwrap();
        assert_eq!(s.name(), "hub-burst[contracts=2;intensity=1.5]");
    }

    #[test]
    fn unknown_names_and_params_error() {
        let reg = ScenarioRegistry::with_builtins();
        let err = err_of(reg.resolve("no-such"));
        assert!(err.contains("unknown scenario"), "{err}");
        let err = err_of(reg.resolve("friendly[x=1]"));
        assert!(
            err.contains("scenario `friendly` does not take parameter `x`"),
            "{err}"
        );
        let err = err_of(reg.resolve("hub-burst[contracts=0]"));
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn all_expands_to_factories() {
        let reg = ScenarioRegistry::with_builtins();
        let list = reg.resolve_list("all").unwrap();
        assert_eq!(list.len(), reg.factory_names().len());
        assert!(reg.resolve_list("").is_err());
    }

    #[test]
    fn scenarios_add_traffic_and_friendly_does_not() {
        let reg = ScenarioRegistry::with_builtins();
        let base = ChainGenerator::new(cfg()).generate();
        let friendly = reg.resolve("friendly").unwrap().build(&cfg());
        assert_eq!(friendly.log.events(), base.log.events());
        let hostile = reg.resolve("hub-burst").unwrap().build(&cfg());
        assert!(hostile.chain.tx_count() > base.chain.tx_count());
    }

    #[test]
    fn composition_concatenates_injectors() {
        let reg = ScenarioRegistry::with_builtins();
        let composed = reg.compose("hub-burst+dummy-spam").unwrap();
        assert_eq!(composed.name(), "hub-burst+dummy-spam");
        assert_eq!(composed.injectors(&cfg()).len(), 2);
        // a lone spec composes to itself
        assert_eq!(reg.compose("friendly").unwrap().name(), "friendly");
        assert!(reg.compose("").is_err());
    }

    #[test]
    fn user_registration_shadows_and_extends() {
        let mut reg = ScenarioRegistry::with_builtins();
        let custom = reg.resolve("dummy-spam[intensity=9]").unwrap();
        reg.register("my-storm", "a custom storm", custom);
        assert!(reg.contains("my-storm"));
        assert_eq!(
            reg.resolve("my-storm").unwrap().name(),
            "dummy-spam[intensity=9]"
        );
        let err = err_of(reg.resolve("my-storm[x=1]"));
        assert!(err.contains("scenario `my-storm`"), "{err}");
    }

    #[test]
    fn span_params_shift_the_hostile_window() {
        let reg = ScenarioRegistry::with_builtins();
        let late = reg
            .resolve("dummy-spam[start=12;duration=2]")
            .unwrap()
            .build(&cfg());
        let base = ChainGenerator::new(cfg()).generate();
        let cut = Timestamp::from_secs(12 * 86_400);
        let before_late = late.txs.iter().filter(|t| t.time < cut).count();
        let before_base = base.txs.iter().filter(|t| t.time < cut).count();
        assert_eq!(before_late, before_base);
        assert!(late.txs.len() > base.txs.len());
    }

    #[test]
    fn help_table_lists_every_entry() {
        let reg = ScenarioRegistry::with_builtins();
        let rendered = reg.help_table().to_string();
        for name in reg.names() {
            assert!(rendered.contains(name), "{name} missing from help");
        }
    }
}
