/root/repo/target/debug/examples/attack_replay-2be92e2819148efc.d: examples/attack_replay.rs

/root/repo/target/debug/examples/attack_replay-2be92e2819148efc: examples/attack_replay.rs

examples/attack_replay.rs:
