//! Regenerates **Fig. 2**: a subgraph of accounts (solid), contracts
//! (dashed) and their weighted dependencies from September 2015, in
//! Graphviz DOT. Pipe the output to `dot -Tpng` to draw it.

use blockpart_bench::generate_history;
use blockpart_core::experiments::fig2_dot;
use blockpart_metrics::calendar::month_start;

fn main() {
    let chain = generate_history();
    // September 2015 is month offset 1 (genesis = 2015-07-30)
    let (start, end) = (month_start(1), month_start(2));
    match fig2_dot(&chain.log, start, end, 2) {
        Some(dot) => {
            eprintln!("# Fig. 2 — 2-hop neighbourhood of the busiest contract in 09.15");
            println!("{dot}");
        }
        None => {
            eprintln!("no contract active in September 2015 at this scale; raise BLOCKPART_SCALE")
        }
    }
}
