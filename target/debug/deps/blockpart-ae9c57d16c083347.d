/root/repo/target/debug/deps/blockpart-ae9c57d16c083347.d: src/lib.rs

/root/repo/target/debug/deps/libblockpart-ae9c57d16c083347.rmeta: src/lib.rs

src/lib.rs:
