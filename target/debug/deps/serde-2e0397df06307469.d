/root/repo/target/debug/deps/serde-2e0397df06307469.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2e0397df06307469.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
