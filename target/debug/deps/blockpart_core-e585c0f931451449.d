/root/repo/target/debug/deps/blockpart_core-e585c0f931451449.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

/root/repo/target/debug/deps/blockpart_core-e585c0f931451449: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/experiments.rs crates/core/src/methods.rs crates/core/src/runtime_study.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/experiments.rs:
crates/core/src/methods.rs:
crates/core/src/runtime_study.rs:
crates/core/src/study.rs:
