/root/repo/target/debug/deps/ablation-1b03c8e39f9e1be7.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-1b03c8e39f9e1be7.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
