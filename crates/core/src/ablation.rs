//! Ablation experiments for the design choices DESIGN.md calls out:
//! placement rules, reduced-window lengths, TR-METIS thresholds, and the
//! offline streaming-partitioner comparison.

use blockpart_graph::InteractionLog;
use blockpart_metrics::Table;
use blockpart_partition::{
    CutMetrics, Fennel, HashPartitioner, LinearGreedy, MultilevelPartitioner, PartitionRequest,
    Partitioner,
};
use blockpart_shard::{PlacementRule, RepartitionPolicy, ShardSimulator, SimulationResult};
use blockpart_types::{Duration, ShardCount};

use crate::methods::Method;

/// Result of one ablation run.
#[derive(Clone, Debug)]
pub struct AblationRun {
    /// Human-readable variant label.
    pub label: String,
    /// Mean per-window dynamic edge-cut.
    pub dynamic_edge_cut: f64,
    /// Mean per-window dynamic balance.
    pub dynamic_balance: f64,
    /// Total vertex moves.
    pub moves: u64,
    /// Repartitions fired.
    pub repartitions: usize,
}

impl AblationRun {
    fn from_result(label: String, result: &SimulationResult) -> AblationRun {
        let active: Vec<_> = result.windows.iter().filter(|w| w.events > 0).collect();
        let n = active.len().max(1) as f64;
        AblationRun {
            label,
            dynamic_edge_cut: active.iter().map(|w| w.dynamic_edge_cut).sum::<f64>() / n,
            dynamic_balance: active.iter().map(|w| w.dynamic_balance).sum::<f64>() / n,
            moves: result.total_moves,
            repartitions: result.repartitions,
        }
    }
}

/// Renders ablation runs as a table.
pub fn ablation_table(runs: &[AblationRun]) -> Table {
    let mut t = Table::new(vec!["variant", "dyn-cut", "dyn-bal", "moves", "reparts"]);
    for r in runs {
        t.row(vec![
            r.label.clone(),
            format!("{:.3}", r.dynamic_edge_cut),
            format!("{:.3}", r.dynamic_balance),
            r.moves.to_string(),
            r.repartitions.to_string(),
        ]);
    }
    t
}

/// Ablation 1 — the new-vertex placement rule: the paper's min-cut
/// placement (join your counterparty) versus plain hashing, everything
/// else as in the METIS method.
pub fn placement_ablation(log: &InteractionLog, k: ShardCount, seed: u64) -> Vec<AblationRun> {
    [PlacementRule::Hash, PlacementRule::MinCut]
        .into_iter()
        .map(|rule| {
            let config = Method::Metis.simulator_config(k).with_placement(rule);
            let mut sim = ShardSimulator::new(config, Method::Metis.partitioner(seed));
            let result = sim.run(log);
            AblationRun::from_result(format!("{rule:?}"), &result)
        })
        .collect()
}

/// Ablation 2 — the reduced-graph window length for R-METIS (the paper
/// fixes it at two weeks; shorter windows see fresher but thinner data).
pub fn scope_window_ablation(
    log: &InteractionLog,
    k: ShardCount,
    windows: &[Duration],
    seed: u64,
) -> Vec<AblationRun> {
    windows
        .iter()
        .map(|&w| {
            let config = Method::RMetis.simulator_config(k).with_scope_window(w);
            let mut sim = ShardSimulator::new(config, Method::RMetis.partitioner(seed));
            let result = sim.run(log);
            AblationRun::from_result(format!("window={}d", w.as_days_f64()), &result)
        })
        .collect()
}

/// Ablation 3 — TR-METIS trigger thresholds: the repartition-count versus
/// quality trade-off the paper tunes by hand. `thresholds` are
/// `(edge_cut, balance)` pairs.
pub fn threshold_ablation(
    log: &InteractionLog,
    k: ShardCount,
    thresholds: &[(f64, f64)],
    seed: u64,
) -> Vec<AblationRun> {
    thresholds
        .iter()
        .map(|&(edge_cut, balance)| {
            let config =
                Method::TrMetis
                    .simulator_config(k)
                    .with_policy(RepartitionPolicy::Threshold {
                        edge_cut,
                        balance,
                        min_interval: Duration::weeks(2),
                    });
            let mut sim = ShardSimulator::new(config, Method::TrMetis.partitioner(seed));
            let result = sim.run(log);
            AblationRun::from_result(format!("cut>{edge_cut}|bal>{balance}"), &result)
        })
        .collect()
}

/// Ablation 4 — offline comparison on the final cumulative graph: hash,
/// the two one-pass streaming partitioners (LDG, Fennel) and the
/// multilevel partitioner. Returns `(label, metrics)` pairs.
pub fn offline_partitioner_comparison(
    log: &InteractionLog,
    k: ShardCount,
) -> Vec<(String, CutMetrics)> {
    let Some(end) = log.last_time() else {
        return Vec::new();
    };
    let graph = log.graph_until(end);
    let csr = graph.to_csr();
    let ids: Vec<u64> = graph.nodes().map(|n| n.address.stable_hash()).collect();
    let req = PartitionRequest::new(&csr, k).with_stable_ids(&ids);

    let mut partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner::new()),
        Box::new(LinearGreedy::default()),
        Box::new(Fennel::default()),
        Box::new(MultilevelPartitioner::default()),
    ];
    partitioners
        .iter_mut()
        .map(|p| {
            let part = p.partition(&req);
            (p.name().to_string(), CutMetrics::compute(&csr, &part))
        })
        .collect()
}

/// Renders the offline comparison as a table.
pub fn offline_table(rows: &[(String, CutMetrics)]) -> Table {
    let mut t = Table::new(vec![
        "partitioner",
        "static-cut",
        "dynamic-cut",
        "static-bal",
        "dynamic-bal",
    ]);
    for (name, m) in rows {
        t.row(vec![
            name.clone(),
            format!("{:.3}", m.static_edge_cut),
            format!("{:.3}", m.dynamic_edge_cut),
            format!("{:.3}", m.static_balance),
            format!("{:.3}", m.dynamic_balance),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpart_graph::Interaction;
    use blockpart_types::{Address, Timestamp};

    fn log() -> InteractionLog {
        let mut log = InteractionLog::new();
        for d in 0..40u64 {
            for h in 0..24 {
                let t = Timestamp::from_secs(d * 86_400 + h * 3_600);
                let i = (d * 24 + h) % 16;
                let community = i % 2;
                log.push(Interaction::new(
                    t,
                    Address::from_index(community * 100 + i),
                    Address::from_index(community * 100 + (i + 2) % 16),
                ));
            }
        }
        log
    }

    #[test]
    fn placement_ablation_runs_both_rules() {
        let log = log();
        let runs = placement_ablation(&log, ShardCount::TWO, 1);
        assert_eq!(runs.len(), 2);
        assert_ne!(runs[0].label, runs[1].label);
        let table = ablation_table(&runs);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn scope_window_ablation_varies_window() {
        let log = log();
        let runs = scope_window_ablation(
            &log,
            ShardCount::TWO,
            &[Duration::weeks(1), Duration::weeks(2)],
            1,
        );
        assert_eq!(runs.len(), 2);
        assert!(runs[0].label.contains("7d"));
    }

    #[test]
    fn threshold_ablation_looser_fires_less() {
        let log = log();
        let runs = threshold_ablation(&log, ShardCount::TWO, &[(0.05, 1.05), (0.95, 5.0)], 1);
        assert_eq!(runs.len(), 2);
        // the near-impossible threshold repartitions no more often than
        // the hair trigger
        assert!(runs[1].repartitions <= runs[0].repartitions);
    }

    #[test]
    fn offline_comparison_covers_all_partitioners() {
        let log = log();
        let rows = offline_partitioner_comparison(&log, ShardCount::TWO);
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["hash", "ldg", "fennel", "metis"]);
        // the multilevel partitioner should beat hashing on this
        // community-structured graph
        let cut = |name: &str| {
            rows.iter()
                .find(|(n, _)| n == name)
                .map(|(_, m)| m.dynamic_edge_cut)
                .expect("present")
        };
        assert!(cut("metis") <= cut("hash"));
        let table = offline_table(&rows);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn offline_comparison_empty_log() {
        let rows = offline_partitioner_comparison(&InteractionLog::new(), ShardCount::TWO);
        assert!(rows.is_empty());
    }
}
