//! Self-profile aggregation: stage spans → a time-breakdown table.

use blockpart_metrics::Table;

use crate::Trace;

/// One aggregated pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageRow {
    /// Span name.
    pub name: String,
    /// Number of spans aggregated.
    pub calls: u64,
    /// Summed span duration in µs.
    pub total_us: u64,
}

/// Sums complete spans of category `cat` by name, in first-seen order.
///
/// Top-level pipeline stages use category `"stage"` and are disjoint in
/// time, so their sum is comparable against total wall time; sub-stage
/// breakdowns use `"detail"` (they nest inside stages and would double
/// count).
pub fn aggregate(trace: &Trace, cat: &str) -> Vec<StageRow> {
    let mut rows: Vec<StageRow> = Vec::new();
    for record in trace.records() {
        let Some(dur) = record.dur_us else { continue };
        if record.cat != cat {
            continue;
        }
        match rows.iter_mut().find(|r| r.name == record.name) {
            Some(row) => {
                row.calls += 1;
                row.total_us += dur;
            }
            None => rows.push(StageRow {
                name: record.name.clone(),
                calls: 1,
                total_us: dur,
            }),
        }
    }
    rows
}

/// Fraction of `wall_us` the rows account for (0 when `wall_us` is 0).
pub fn coverage(rows: &[StageRow], wall_us: u64) -> f64 {
    if wall_us == 0 {
        return 0.0;
    }
    rows.iter().map(|r| r.total_us).sum::<u64>() as f64 / wall_us as f64
}

/// Renders stage rows (and their `detail` sub-rows, indented) as a
/// `stage | calls | time | % of total` table, stages sorted by time
/// descending.
pub fn table(rows: &[StageRow], details: &[StageRow], wall_us: u64) -> Table {
    let mut sorted: Vec<&StageRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    let mut t = Table::new(vec!["stage", "calls", "time (ms)", "% of total"]);
    let pct = |us: u64| {
        if wall_us == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * us as f64 / wall_us as f64)
        }
    };
    for row in sorted {
        t.row(vec![
            row.name.clone(),
            row.calls.to_string(),
            format!("{:.2}", row.total_us as f64 / 1000.0),
            pct(row.total_us),
        ]);
        // Sub-stage details are named "<stage>/<part>".
        let prefix = format!("{}/", row.name);
        for d in details.iter().filter(|d| d.name.starts_with(&prefix)) {
            t.row(vec![
                format!("  {}", d.name),
                d.calls.to_string(),
                format!("{:.2}", d.total_us as f64 / 1000.0),
                pct(d.total_us),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spanned(spans: &[(&str, &'static str, u64)]) -> Trace {
        let mut t = Trace::new_virtual();
        let mut at = 0;
        for &(name, cat, dur) in spans {
            t.span_at(at, dur, cat, name);
            at += dur;
        }
        t
    }

    #[test]
    fn aggregates_by_name_in_first_seen_order() {
        let t = spanned(&[
            ("gen", "stage", 100),
            ("sim", "stage", 300),
            ("sim", "stage", 200),
            ("sim/partition", "detail", 150),
        ]);
        let rows = aggregate(&t, "stage");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "gen");
        assert_eq!(
            rows[1],
            StageRow {
                name: "sim".into(),
                calls: 2,
                total_us: 500
            }
        );
        assert!((coverage(&rows, 600) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_sorts_and_nests_details() {
        let t = spanned(&[
            ("gen", "stage", 100),
            ("sim", "stage", 500),
            ("sim/partition", "detail", 400),
        ]);
        let rendered = table(&aggregate(&t, "stage"), &aggregate(&t, "detail"), 600).render_ascii();
        let sim = rendered.find("sim ").unwrap();
        let part = rendered.find("  sim/partition").unwrap();
        let gen = rendered.find("gen").unwrap();
        assert!(sim < part && part < gen, "{rendered}");
        assert!(rendered.contains("83.3%"), "{rendered}");
    }
}
