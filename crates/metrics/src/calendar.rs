//! Month labelling aligned with the paper's figure axes.
//!
//! The simulation epoch is Ethereum's genesis (2015-07-30), so month
//! offset 0 covers August 2015 and the labels run `08.15`, `09.15`, …,
//! `01.18` exactly like the x-axes of Fig. 1 and Fig. 3.

use blockpart_types::Timestamp;

/// Average month length used to convert timestamps to month offsets
/// (30.4375 days — matches the generator's timeline).
pub const MONTH_SECS: u64 = 2_629_800;

/// The month offset (0 = August 2015) containing `t`.
///
/// # Examples
///
/// ```
/// use blockpart_metrics::calendar::{month_index, MONTH_SECS};
/// use blockpart_types::Timestamp;
///
/// assert_eq!(month_index(Timestamp::EPOCH), 0);
/// assert_eq!(month_index(Timestamp::from_secs(MONTH_SECS * 3 + 1)), 3);
/// ```
pub fn month_index(t: Timestamp) -> usize {
    (t.as_secs() / MONTH_SECS) as usize
}

/// The start of month offset `m`.
pub fn month_start(m: usize) -> Timestamp {
    Timestamp::from_secs(m as u64 * MONTH_SECS)
}

/// Formats a month offset as the paper's `MM.YY` axis label
/// (offset 0 → `08.15`).
///
/// # Examples
///
/// ```
/// use blockpart_metrics::calendar::month_label;
///
/// assert_eq!(month_label(0), "08.15");
/// assert_eq!(month_label(5), "01.16");
/// assert_eq!(month_label(29), "01.18");
/// ```
pub fn month_label(m: usize) -> String {
    // offset 0 = August 2015 (calendar month 8 of year 15)
    let absolute = 8 + m; // months since January 2015, 1-based-ish
    let month = (absolute - 1) % 12 + 1;
    let year = 15 + (absolute - 1) / 12;
    format!("{month:02}.{year:02}")
}

/// Formats the timestamp's month as `MM.YY`.
pub fn label_of(t: Timestamp) -> String {
    month_label(month_index(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_wrap_years() {
        assert_eq!(month_label(0), "08.15");
        assert_eq!(month_label(4), "12.15");
        assert_eq!(month_label(5), "01.16");
        assert_eq!(month_label(16), "12.16");
        assert_eq!(month_label(17), "01.17");
    }

    #[test]
    fn index_and_start_roundtrip() {
        for m in [0usize, 1, 12, 29] {
            assert_eq!(month_index(month_start(m)), m);
        }
    }

    #[test]
    fn label_of_timestamp() {
        assert_eq!(label_of(Timestamp::EPOCH), "08.15");
        assert_eq!(label_of(month_start(17)), "01.17");
    }
}
